"""Hierarchical group-based sharing (paper Section IV-C).

A flat disaggregated memory map does not scale to terabytes of cluster
memory, so nodes are partitioned into groups of similar size; nodes
share disaggregated memory only within their group, and each group
elects a leader to coordinate.  Two extensions from the paper are
supported: a second tier (the leaders of tier-1 groups form a tier-2
group), and dynamic re-grouping when a group runs short of memory.
"""


class Group:
    """One coordination group of nodes."""

    def __init__(self, group_id, members):
        self.group_id = group_id
        self.members = list(members)
        self.leader = None
        self.term = 0

    def __contains__(self, node_id):
        return node_id in self.members

    def __len__(self):
        return len(self.members)

    def __repr__(self):
        return "<Group {} members={} leader={!r}>".format(
            self.group_id, self.members, self.leader
        )


class GroupManager:
    """Partitions nodes into groups and supports dynamic re-grouping."""

    def __init__(self, node_ids, group_size=0):
        node_ids = list(node_ids)
        if group_size < 0:
            raise ValueError("group_size must be >= 0")
        if group_size == 1:
            raise ValueError(
                "group_size 1 is degenerate: a single node cannot share "
                "disaggregated memory with itself"
            )
        if group_size == 0 or group_size >= len(node_ids):
            chunks = [node_ids]
        else:
            chunks = [
                node_ids[i:i + group_size]
                for i in range(0, len(node_ids), group_size)
            ]
            # Fold a lonely remainder into the previous group so group
            # sizes stay "similar" per the paper.
            if len(chunks) > 1 and len(chunks[-1]) == 1:
                chunks[-2].extend(chunks.pop())
        self.groups = {i: Group(i, members) for i, members in enumerate(chunks)}
        self._group_of = {}
        for group in self.groups.values():
            for node_id in group.members:
                self._group_of[node_id] = group.group_id
        self.regroup_events = 0

    def group_of(self, node_id):
        """The :class:`Group` containing ``node_id``."""
        return self.groups[self._group_of[node_id]]

    def peers_of(self, node_id):
        """Other members of ``node_id``'s group."""
        group = self.group_of(node_id)
        return [m for m in group.members if m != node_id]

    def tier2_members(self):
        """The leaders of all groups (the second coordination tier)."""
        return [g.leader for g in self.groups.values() if g.leader is not None]

    def merge_groups(self, group_id_a, group_id_b):
        """Dynamic re-grouping: fold group B into group A.

        The paper lets a leader request re-grouping when its group runs
        short of disaggregated memory; merging is the simplest form.
        """
        if group_id_a == group_id_b:
            raise ValueError("cannot merge a group with itself")
        group_a = self.groups[group_id_a]
        group_b = self.groups.pop(group_id_b)
        group_a.members.extend(group_b.members)
        for node_id in group_b.members:
            self._group_of[node_id] = group_id_a
        # Leadership of the merged group must be re-established.
        group_a.leader = None
        group_a.term += 1
        self.regroup_events += 1
        return group_a

    def remove_node(self, node_id):
        """Drop a decommissioned/crashed node from its group."""
        group = self.group_of(node_id)
        group.members.remove(node_id)
        del self._group_of[node_id]
        if group.leader == node_id:
            group.leader = None
        return group
