"""Errors raised by the disaggregated memory core."""


class CoreError(Exception):
    """Base class for disaggregated-memory-core errors."""


class NoRemoteCapacity(CoreError):
    """No reachable group peer could host the entry."""


class EntryLost(CoreError):
    """Every replica of an entry is unreachable or gone."""

    def __init__(self, key):
        super().__init__("all replicas of {!r} lost".format(key))
        self.key = key


class UnknownKey(CoreError):
    """A get/remove referenced a key with no committed record."""

    def __init__(self, key):
        super().__init__("no committed entry for {!r}".format(key))
        self.key = key


class ControlTimeout(CoreError):
    """A control-plane request got no reply within the timeout."""

    def __init__(self, target):
        super().__init__("control request to {!r} timed out".format(target))
        self.target = target
