"""Slab eviction and ballooning policies (paper Section IV-F).

Two recommended policies, both implemented as a periodic per-node
monitor:

1. **Receive-pool eviction** — a node whose servers frequently overflow
   to *remote* disaggregated memory is itself short on memory; it
   should shrink the DRAM it donates to the cluster by deregistering
   receive-pool slabs.  Hosted entries displaced this way are
   re-replicated elsewhere by their owners (triple-replica upkeep).
2. **Ballooning** — a virtual server that keeps requesting
   disaggregated memory should get more private DRAM, reclaimed from
   the node shared pool; the swap/caching layer can subscribe to these
   recommendations and grow the server's resident set.
"""

from repro.core.agents import CONTROL_MESSAGE_BYTES
from repro.net.errors import NetworkError


class BalloonRecommendation:
    """Advice to grant a server more private memory."""

    __slots__ = ("time", "server_id", "granted_bytes", "request_rate")

    def __init__(self, time, server_id, granted_bytes, request_rate):
        self.time = time
        self.server_id = server_id
        self.granted_bytes = granted_bytes
        self.request_rate = request_rate


class EvictionManager:
    """Periodic monitor applying the two Section IV-F policies."""

    #: How much of a server's remaining donation one balloon step grants.
    BALLOON_STEP_FRACTION = 0.25

    def __init__(self, env, directory, config, check_period=0.5):
        self.env = env
        self.directory = directory
        self.config = config
        self.check_period = check_period
        self.slab_evictions = 0
        self.entry_evictions = 0
        self.recommendations = []
        self._balloon_listeners = []
        self._processes = []
        self._last_check = {}

    def on_balloon(self, callback):
        """Register ``callback(server, granted_bytes)``."""
        self._balloon_listeners.append(callback)

    def start(self):
        """Spawn one monitor process per node."""
        for node in self.directory.nodes():
            process = self.env.process(
                self._monitor(node), name="evict:{}".format(node.node_id)
            )
            self._processes.append(process)
        return self._processes

    def _monitor(self, node):
        while True:
            yield self.env.timeout(self.check_period)
            if self.directory.is_down(node.node_id):
                continue
            yield from self._apply_receive_pool_policy(node)
            self._apply_balloon_policy(node)

    # -- policy 1: shrink the cluster donation under local pressure -----------

    def _apply_receive_pool_policy(self, node):
        elapsed = self.env.now - self._last_check.get(node.node_id, 0.0)
        self._last_check[node.node_id] = self.env.now
        rate = node.remote_put_rate_since_last_check(elapsed)
        if rate <= self.config.balloon_request_rate:
            return
        if node.receive_pool.capacity_bytes == 0:
            return
        # Prefer idle slabs; displace hosted entries only when none are idle.
        removed = node.receive_pool.shrink(1)
        if removed:
            self.slab_evictions += removed
            return
        evicted = node.rdms.evict_entries(self.config.slab_bytes)
        self.entry_evictions += len(evicted)
        yield from self._notify_owners(node, evicted)
        removed = node.receive_pool.shrink(1)
        self.slab_evictions += removed

    def _notify_owners(self, node, evicted_entries):
        """Tell each owner its replica here is gone so it re-replicates."""
        for entry in evicted_entries:
            owner = entry.owner_node_id
            if self.directory.is_down(owner):
                continue
            try:
                yield from node.device.fabric.transfer(
                    node.node_id, owner, CONTROL_MESSAGE_BYTES
                )
            except NetworkError:
                continue
            owner_node = self.directory.node(owner)
            self.env.process(
                owner_node.ldms.handle_replica_eviction(entry.key, node.node_id),
                name="rereplicate:{}".format(entry.key),
            )

    # -- policy 2: balloon hot servers ------------------------------------------

    def _apply_balloon_policy(self, node):
        elapsed = self.check_period
        for server in node.servers:
            rate = server.request_rate_since_last_check(elapsed)
            if rate <= self.config.balloon_request_rate:
                continue
            step = int(server.donated_bytes * self.BALLOON_STEP_FRACTION)
            granted = server.balloon(step)
            if granted <= 0:
                continue
            recommendation = BalloonRecommendation(
                self.env.now, server.server_id, granted, rate
            )
            self.recommendations.append(recommendation)
            for callback in self._balloon_listeners:
                callback(server, granted)
