"""Open-loop arrival processes: Poisson, bursty (MMPP), diurnal.

An arrival process turns an aggregate request rate into a concrete,
deterministic sequence of arrival timestamps.  All three processes are
pure functions of the RNG handed in — the same ``(process, seed)``
always yields the same arrivals — which is what lets the serving
driver pre-generate request schedules and the experiment engine keep
serial and parallel sweeps byte-identical.

Tenant aggregation
------------------

The superposition of ``N`` independent Poisson streams of rate ``r``
is a Poisson stream of rate ``N*r``, so a tenant *class* of a hundred
thousand identical tenants costs exactly one stream to simulate —
request count scales with ``duration * N * r``, not with ``N``.  The
same collapse is applied to the modulated processes: burst phases and
diurnal cycles modulate the class's aggregate rate (tenants of one
class move together — the adversarial case for SLOs, since bursts
stack instead of averaging out).  :meth:`ArrivalProcess.aggregate`
performs the scaling; :class:`repro.serve.qos.TenantClassSpec` calls
it with its tenant count.
"""

import math
from dataclasses import dataclass, replace
from heapq import merge as _heap_merge
from math import log as _log

__all__ = [
    "ArrivalProcess",
    "ArrivalSchedule",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "aggregate",
    "make_arrival_process",
]


@dataclass(frozen=True)
class ArrivalProcess:
    """Base contract: a rate plus a deterministic timestamp generator."""

    #: Aggregate arrival rate in requests per simulated second.
    rate: float

    kind = "abstract"

    def __post_init__(self):
        if self.rate < 0:
            raise ValueError("rate must be non-negative")

    def arrival_times(self, rng, duration, modulation=None):
        """All arrivals in ``[0, duration)``, strictly increasing.

        ``modulation``, when given, is a separate RNG for the process's
        *envelope* draws (burst phase windows), leaving ``rng`` to the
        within-envelope arrival draws.  Handing every class of a mix an
        identically seeded ``modulation`` correlates their load surges
        (tenants move together) while keeping individual arrivals
        independent; by default the envelope shares ``rng``.

        A zero-rate process is the empty stream: no arrivals, and — so
        batched and streamed generation stay aligned — no RNG draws.
        """
        raise NotImplementedError

    def arrival_array(self, rng, duration, modulation=None):
        """The same arrivals as :meth:`arrival_times`, generated on the
        batched path.

        Contract (pinned by the property suite): the array is
        event-for-event identical to the streamed generator — same
        floats, same RNG consumption — so a schedule built from arrays
        is interchangeable with one built by streaming.  Subclasses
        override this with a draw-inlined loop; the base implementation
        simply delegates, which is always correct.
        """
        return self.arrival_times(rng, duration, modulation)

    def gaps(self, rng, duration, modulation=None):
        """The same arrivals as inter-arrival gaps (``AccessBatch.gaps``
        shape: gap ``i`` is the wait *before* arrival ``i``)."""
        gaps = []
        previous = 0.0
        for time in self.arrival_times(rng, duration, modulation):
            gaps.append(time - previous)
            previous = time
        return gaps

    def aggregate(self, tenants):
        """The superposed process of ``tenants`` identical streams."""
        if tenants < 1:
            raise ValueError("tenants must be >= 1")
        return replace(self, rate=self.rate * tenants)

    def to_json(self):
        doc = {"kind": self.kind}
        doc.update(
            (name, getattr(self, name)) for name in self.__dataclass_fields__
        )
        return doc


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: i.i.d. exponential gaps at ``rate``."""

    kind = "poisson"

    def arrival_times(self, rng, duration, modulation=None):
        # Memoryless: there is no envelope, ``modulation`` is unused.
        if self.rate == 0.0:
            return []
        times = []
        now = 0.0
        expovariate = rng.expovariate
        rate = self.rate
        while True:
            now += expovariate(rate)
            if now >= duration:
                return times
            times.append(now)

    def arrival_array(self, rng, duration, modulation=None):
        # The gap draw inlined (``expovariate(rate)`` is exactly
        # ``-log(1 - random()) / rate`` — the stdlib's own expression),
        # which removes one Python method call per arrival without
        # changing a single float.
        if self.rate == 0.0:
            return []
        times = []
        append = times.append
        now = 0.0
        random = rng.random
        rate = self.rate
        while True:
            now += -_log(1.0 - random()) / rate
            if now >= duration:
                return times
            append(now)


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """MMPP on/off arrivals: exponential bursts at ``burst_factor`` times
    the mean rate, separated by silent periods.

    A two-state Markov-modulated Poisson process: the class is ON for
    an exponential holding time with mean ``on_fraction * cycle`` and
    OFF for mean ``(1 - on_fraction) * cycle``.  All arrivals happen
    while ON, at rate ``rate / on_fraction`` — so the time-average rate
    is exactly ``rate`` and the instantaneous burst intensity is
    ``1 / on_fraction`` (the ``burst_factor`` property) times the mean.
    """

    #: Fraction of time spent in the ON (bursting) state.
    on_fraction: float = 0.125
    #: Mean ON+OFF cycle length in seconds.
    cycle: float = 0.4

    kind = "bursty"

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 < self.on_fraction < 1.0:
            raise ValueError("on_fraction must be in (0, 1)")
        if self.cycle <= 0:
            raise ValueError("cycle must be positive")

    @property
    def burst_factor(self):
        """Instantaneous ON rate relative to the mean rate."""
        return 1.0 / self.on_fraction

    def arrival_times(self, rng, duration, modulation=None):
        if self.rate == 0.0:
            return []
        times = []
        expovariate = rng.expovariate
        window = (modulation or rng).expovariate
        on_rate = self.rate / self.on_fraction
        mean_on = self.on_fraction * self.cycle
        mean_off = (1.0 - self.on_fraction) * self.cycle
        now = 0.0
        while now < duration:
            # ON: a burst of exponential gaps at the boosted rate.
            on_end = now + window(1.0 / mean_on)
            while True:
                now += expovariate(on_rate)
                if now >= on_end or now >= duration:
                    break
                times.append(now)
            # OFF: silence.
            now = on_end + window(1.0 / mean_off)
        return [time for time in times if time < duration]

    def arrival_array(self, rng, duration, modulation=None):
        # Hot loop (within-burst gaps) draw-inlined; the cold envelope
        # draws keep calling ``expovariate`` on the modulation RNG, so
        # phase alignment across classes is untouched.
        if self.rate == 0.0:
            return []
        times = []
        append = times.append
        random = rng.random
        window = (modulation or rng).expovariate
        on_rate = self.rate / self.on_fraction
        mean_on = self.on_fraction * self.cycle
        mean_off = (1.0 - self.on_fraction) * self.cycle
        now = 0.0
        while now < duration:
            on_end = now + window(1.0 / mean_on)
            while True:
                now += -_log(1.0 - random()) / on_rate
                if now >= on_end or now >= duration:
                    break
                append(now)
            now = on_end + window(1.0 / mean_off)
        return [time for time in times if time < duration]


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated arrivals (a compressed day/night cycle).

    Instantaneous rate ``rate * (1 + depth * sin(2*pi*t / period))``,
    sampled by thinning (Lewis-Shedler): candidates are drawn at the
    peak rate and accepted with probability ``lambda(t) / peak`` — one
    extra uniform draw per candidate, still a pure function of the RNG.
    """

    #: Cycle length in simulated seconds (a scaled-down "day").
    period: float = 2.0
    #: Modulation depth in [0, 1): 0 = flat, 0.9 = deep trough.
    depth: float = 0.8

    kind = "diurnal"

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 <= self.depth < 1.0:
            raise ValueError("depth must be in [0, 1)")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def arrival_times(self, rng, duration, modulation=None):
        # The envelope is the deterministic sinusoid itself — classes
        # sharing (period, depth) are already phase-aligned, so
        # ``modulation`` is unused.
        if self.rate == 0.0:
            return []
        times = []
        expovariate = rng.expovariate
        random = rng.random
        peak = self.rate * (1.0 + self.depth)
        omega = 2.0 * math.pi / self.period
        now = 0.0
        while True:
            now += expovariate(peak)
            if now >= duration:
                return times
            intensity = self.rate * (1.0 + self.depth * math.sin(omega * now))
            if random() * peak < intensity:
                times.append(now)

    def arrival_array(self, rng, duration, modulation=None):
        # Candidate draw inlined; the thinning acceptance keeps the
        # exact streamed arithmetic (one uniform per candidate).
        if self.rate == 0.0:
            return []
        times = []
        append = times.append
        random = rng.random
        sin = math.sin
        rate = self.rate
        depth = self.depth
        peak = rate * (1.0 + depth)
        omega = 2.0 * math.pi / self.period
        now = 0.0
        while True:
            now += -_log(1.0 - random()) / peak
            if now >= duration:
                return times
            intensity = rate * (1.0 + depth * sin(omega * now))
            if random() * peak < intensity:
                append(now)


@dataclass
class ArrivalSchedule:
    """A whole mix's arrivals, superposed into flat parallel arrays.

    ``times[k]`` is the ``k``-th arrival of the *merged* schedule
    (ascending, ties broken by class index) and ``classes[k]`` the
    index of the tenant class it belongs to; ``per_class[i]`` counts
    class ``i``'s arrivals.  This is the batched contract the serving
    driver consumes directly — one admission scan over two arrays
    instead of a per-request scan across per-class queues.
    """

    #: Merged arrival timestamps, ascending, relative to the epoch.
    times: list
    #: Parallel class index per arrival.
    classes: list
    #: Arrival count per class, in mix order.
    per_class: tuple

    def __post_init__(self):
        if len(self.times) != len(self.classes):
            raise ValueError(
                "times ({}) and classes ({}) must be parallel".format(
                    len(self.times), len(self.classes)
                )
            )

    def __len__(self):
        return len(self.times)

    def class_times(self, index):
        """Class ``index``'s own arrivals, in order (for cross-checks)."""
        return [
            time for time, cls in zip(self.times, self.classes)
            if cls == index
        ]


def _resolve_process(entry):
    """An entry of a mix: a TenantClassSpec-like object (duck-typed on
    its ``arrival_process`` hook) or a bare :class:`ArrivalProcess`."""
    process = getattr(entry, "arrival_process", None)
    if process is not None:
        return process
    if isinstance(entry, ArrivalProcess):
        return entry
    raise TypeError(
        "mix entries must be ArrivalProcess instances or expose an "
        "arrival_process hook; got {!r}".format(type(entry).__name__)
    )


def aggregate(mix, rng, duration):
    """Superpose every class of ``mix`` into one :class:`ArrivalSchedule`.

    ``rng`` is an :class:`~repro.sim.rng.RngStreams`: class ``i`` draws
    its arrivals from the named stream ``serve-arrivals{i}`` — exactly
    the streams the serving driver has always used, so the batched
    schedule is event-for-event identical to per-class streamed
    generation.  Every class gets a *fresh, identically seeded*
    modulation RNG (derived from the master seed), so burst envelopes
    are phase-aligned across classes: a surge is a surge for everyone
    (tenants move together).  Uncorrelated phases would let a class's
    private burst hit a congested window no other class sees —
    breaking the cross-class delay dominance the priority scheduler
    otherwise guarantees.

    Edge cases are first-class: an empty mix or a zero-rate class
    yields an empty contribution (no arrivals, no RNG draws), and a
    duration shorter than one burst phase simply truncates the window.
    """
    import random as random_module

    from repro.sim.rng import derive_seed

    per_class = []
    streams = []
    for index, entry in enumerate(mix):
        process = _resolve_process(entry)
        modulation = random_module.Random(
            derive_seed(rng.seed, "serve-modulation")
        )
        times = process.arrival_array(
            rng.stream("serve-arrivals{}".format(index)), duration,
            modulation,
        )
        per_class.append(len(times))
        streams.append([(time, index) for time in times])
    times = []
    classes = []
    for time, index in _heap_merge(*streams):
        times.append(time)
        classes.append(index)
    return ArrivalSchedule(
        times=times, classes=classes, per_class=tuple(per_class)
    )


_KINDS = {
    cls.kind: cls
    for cls in (PoissonArrivals, BurstyArrivals, DiurnalArrivals)
}


def make_arrival_process(kind, rate, **params):
    """Factory keyed on the ``kind`` strings experiments sweep over."""
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise ValueError(
            "unknown arrival kind {!r}; expected one of {}".format(
                kind, sorted(_KINDS)
            )
        ) from None
    return cls(rate=rate, **params)
