"""Open-loop arrival processes: Poisson, bursty (MMPP), diurnal.

An arrival process turns an aggregate request rate into a concrete,
deterministic sequence of arrival timestamps.  All three processes are
pure functions of the RNG handed in — the same ``(process, seed)``
always yields the same arrivals — which is what lets the serving
driver pre-generate request schedules and the experiment engine keep
serial and parallel sweeps byte-identical.

Tenant aggregation
------------------

The superposition of ``N`` independent Poisson streams of rate ``r``
is a Poisson stream of rate ``N*r``, so a tenant *class* of a hundred
thousand identical tenants costs exactly one stream to simulate —
request count scales with ``duration * N * r``, not with ``N``.  The
same collapse is applied to the modulated processes: burst phases and
diurnal cycles modulate the class's aggregate rate (tenants of one
class move together — the adversarial case for SLOs, since bursts
stack instead of averaging out).  :meth:`ArrivalProcess.aggregate`
performs the scaling; :class:`repro.serve.qos.TenantClassSpec` calls
it with its tenant count.
"""

import math
from dataclasses import dataclass, replace

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "make_arrival_process",
]


@dataclass(frozen=True)
class ArrivalProcess:
    """Base contract: a rate plus a deterministic timestamp generator."""

    #: Aggregate arrival rate in requests per simulated second.
    rate: float

    kind = "abstract"

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def arrival_times(self, rng, duration, modulation=None):
        """All arrivals in ``[0, duration)``, strictly increasing.

        ``modulation``, when given, is a separate RNG for the process's
        *envelope* draws (burst phase windows), leaving ``rng`` to the
        within-envelope arrival draws.  Handing every class of a mix an
        identically seeded ``modulation`` correlates their load surges
        (tenants move together) while keeping individual arrivals
        independent; by default the envelope shares ``rng``.
        """
        raise NotImplementedError

    def gaps(self, rng, duration, modulation=None):
        """The same arrivals as inter-arrival gaps (``AccessBatch.gaps``
        shape: gap ``i`` is the wait *before* arrival ``i``)."""
        gaps = []
        previous = 0.0
        for time in self.arrival_times(rng, duration, modulation):
            gaps.append(time - previous)
            previous = time
        return gaps

    def aggregate(self, tenants):
        """The superposed process of ``tenants`` identical streams."""
        if tenants < 1:
            raise ValueError("tenants must be >= 1")
        return replace(self, rate=self.rate * tenants)

    def to_json(self):
        doc = {"kind": self.kind}
        doc.update(
            (name, getattr(self, name)) for name in self.__dataclass_fields__
        )
        return doc


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: i.i.d. exponential gaps at ``rate``."""

    kind = "poisson"

    def arrival_times(self, rng, duration, modulation=None):
        # Memoryless: there is no envelope, ``modulation`` is unused.
        times = []
        now = 0.0
        expovariate = rng.expovariate
        rate = self.rate
        while True:
            now += expovariate(rate)
            if now >= duration:
                return times
            times.append(now)


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """MMPP on/off arrivals: exponential bursts at ``burst_factor`` times
    the mean rate, separated by silent periods.

    A two-state Markov-modulated Poisson process: the class is ON for
    an exponential holding time with mean ``on_fraction * cycle`` and
    OFF for mean ``(1 - on_fraction) * cycle``.  All arrivals happen
    while ON, at rate ``rate / on_fraction`` — so the time-average rate
    is exactly ``rate`` and the instantaneous burst intensity is
    ``1 / on_fraction`` (the ``burst_factor`` property) times the mean.
    """

    #: Fraction of time spent in the ON (bursting) state.
    on_fraction: float = 0.125
    #: Mean ON+OFF cycle length in seconds.
    cycle: float = 0.4

    kind = "bursty"

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 < self.on_fraction < 1.0:
            raise ValueError("on_fraction must be in (0, 1)")
        if self.cycle <= 0:
            raise ValueError("cycle must be positive")

    @property
    def burst_factor(self):
        """Instantaneous ON rate relative to the mean rate."""
        return 1.0 / self.on_fraction

    def arrival_times(self, rng, duration, modulation=None):
        times = []
        expovariate = rng.expovariate
        window = (modulation or rng).expovariate
        on_rate = self.rate / self.on_fraction
        mean_on = self.on_fraction * self.cycle
        mean_off = (1.0 - self.on_fraction) * self.cycle
        now = 0.0
        while now < duration:
            # ON: a burst of exponential gaps at the boosted rate.
            on_end = now + window(1.0 / mean_on)
            while True:
                now += expovariate(on_rate)
                if now >= on_end or now >= duration:
                    break
                times.append(now)
            # OFF: silence.
            now = on_end + window(1.0 / mean_off)
        return [time for time in times if time < duration]


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated arrivals (a compressed day/night cycle).

    Instantaneous rate ``rate * (1 + depth * sin(2*pi*t / period))``,
    sampled by thinning (Lewis-Shedler): candidates are drawn at the
    peak rate and accepted with probability ``lambda(t) / peak`` — one
    extra uniform draw per candidate, still a pure function of the RNG.
    """

    #: Cycle length in simulated seconds (a scaled-down "day").
    period: float = 2.0
    #: Modulation depth in [0, 1): 0 = flat, 0.9 = deep trough.
    depth: float = 0.8

    kind = "diurnal"

    def __post_init__(self):
        super().__post_init__()
        if not 0.0 <= self.depth < 1.0:
            raise ValueError("depth must be in [0, 1)")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def arrival_times(self, rng, duration, modulation=None):
        # The envelope is the deterministic sinusoid itself — classes
        # sharing (period, depth) are already phase-aligned, so
        # ``modulation`` is unused.
        times = []
        expovariate = rng.expovariate
        random = rng.random
        peak = self.rate * (1.0 + self.depth)
        omega = 2.0 * math.pi / self.period
        now = 0.0
        while True:
            now += expovariate(peak)
            if now >= duration:
                return times
            intensity = self.rate * (1.0 + self.depth * math.sin(omega * now))
            if random() * peak < intensity:
                times.append(now)


_KINDS = {
    cls.kind: cls
    for cls in (PoissonArrivals, BurstyArrivals, DiurnalArrivals)
}


def make_arrival_process(kind, rate, **params):
    """Factory keyed on the ``kind`` strings experiments sweep over."""
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise ValueError(
            "unknown arrival kind {!r}; expected one of {}".format(
                kind, sorted(_KINDS)
            )
        ) from None
    return cls(rate=rate, **params)
