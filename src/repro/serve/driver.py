"""The open-loop multi-tenant serving driver.

One simulated front-end node serves the aggregate request streams of
several tenant classes (:class:`~repro.serve.qos.TenantClassSpec`)
against one swap backend under memory pressure.  Requests arrive
open-loop — the arrival processes do not wait for the server — so
queueing delay is real: a slow backend does not slow the offered load
down, it grows the queue, and latency (completion minus arrival)
shows it.  The :class:`~repro.serve.accountant.SloAccountant` turns
completions into goodput-under-SLO, violation fractions and fairness.

Scheduling: non-preemptive priority.  When the server frees up, the
highest-priority class with a request waiting is served next (FIFO
within a class, class index breaks priority ties).  A request in
service always runs to completion.

Two-speed execution
-------------------

Request schedules are pre-generated per class from named RNG streams
(arrivals and operations draw from *separate* streams), so the fast
and event paths consume identical randomness.  Under ``fast_path``:

* each request's page burst runs through
  :meth:`~repro.swap.base.VirtualMemory.run_batch` (the flat-path
  kernel, byte-identical by its equivalence contract);
* idle waits until the next arrival and the per-request pending-time
  flush are applied as direct clock jumps, but only when the resulting
  timeout would pop *strictly before* everything already on the event
  heap and no bulk hold is active — the same strict-compare argument
  the flat-path kernel uses: a strict winner fires with nothing able
  to observe the wait, so adding to the clock is the identical float
  computation (``env._seq`` is deliberately not consumed, which
  shifts all later tie-break sequence numbers uniformly).

Everything else — chaos windows, backend retries, fault-driver events
on the heap — falls back to the ordinary event engine, so serving
composes with :mod:`repro.faults` unchanged.
"""

import random
from dataclasses import dataclass, field

from repro.experiments.runner import (
    RunContext,
    RunResult,
    _build,
    _collect_backend_stats,
    _collect_latency_stats,
    _collect_tier_stats,
    _fallback_windows,
    _install_faults,
    _resolve_context,
    register_result_kind,
)
from repro.experiments.runner import default_cluster_config
from repro.mem.page import make_pages
from repro.serve.accountant import SloAccountant
from repro.sim.rng import derive_seed
from repro.swap.base import VirtualMemory
from repro.workloads.batch import AccessBatch

__all__ = ["ServingRunResult", "run_serving_workload"]


@register_result_kind
@dataclass
class ServingRunResult(RunResult):
    """Outcome of one open-loop serving run."""

    backend: str
    workload: str
    fit_fraction: float
    duration: float
    #: Simulated users: the sum of all classes' tenant counts.
    users: int
    offered: int
    completed: int
    #: Aggregate requests/s that met their class SLO.
    goodput_rps: float
    #: Jain fairness over per-class SLO attainment.
    fairness: float
    #: Per-class accounting rows (goodput, violations, percentiles).
    class_rows: list = field(default_factory=list)
    #: The accountant's JSON form (mergeable across runs).
    accounts: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    backend_stats: dict = field(default_factory=dict)
    tier_stats: list = field(default_factory=list)
    tier_stack: str = ""
    latency_stats: list = field(default_factory=list)
    #: The RunContext this run recorded into (not serialized).
    context: RunContext = field(default=None, repr=False, compare=False)
    #: Whether the run drove the flat-path kernel (not serialized).
    fast_path: bool = field(default=False, compare=False)

    kind = "serving"

    def row(self):
        return {
            "backend": self.backend,
            "workload": self.workload,
            "fit": self.fit_fraction,
            "users": self.users,
            "offered": self.offered,
            "goodput_rps": self.goodput_rps,
            "fairness": self.fairness,
        }


class _ClassQueue:
    """One tenant class's pre-generated request schedule."""

    __slots__ = ("spec", "index", "requests", "next")

    def __init__(self, spec, index, requests):
        self.spec = spec
        self.index = index
        #: ``(arrival_s, first_page, page_count, is_write)`` per request.
        self.requests = requests
        self.next = 0

    @property
    def head_arrival(self):
        return self.requests[self.next][0]

    @property
    def exhausted(self):
        return self.next >= len(self.requests)

    def pop(self):
        request = self.requests[self.next]
        self.next += 1
        return request


def _generate_schedules(mix, rng, duration):
    """Pre-generate every class's arrivals and operations.

    Arrivals and operations draw from separate named streams keyed by
    class index, so the schedule is a pure function of ``(mix, seed,
    duration)`` — the determinism the property tests pin down.

    Every class gets a *fresh, identically seeded* modulation RNG, so
    burst envelopes are phase-aligned across classes: a surge is a
    surge for everyone (tenants move together).  Uncorrelated phases
    would let a class's private burst hit a congested window no other
    class sees — breaking the cross-class delay dominance the priority
    scheduler otherwise guarantees.
    """
    queues = []
    for index, spec in enumerate(mix):
        modulation = random.Random(derive_seed(rng.seed, "serve-modulation"))
        arrivals = spec.arrival_process.arrival_times(
            rng.stream("serve-arrivals{}".format(index)), duration,
            modulation,
        )
        operations = spec.ops_batch(
            rng.stream("serve-ops{}".format(index)), len(arrivals)
        )
        requests = [
            (arrival, first_page, count, is_write)
            for arrival, (first_page, count, is_write)
            in zip(arrivals, operations)
        ]
        queues.append(_ClassQueue(spec, index, requests))
    return queues


def _inline_jump(env, delay):
    """Advance the clock by ``delay`` without an event, when nothing
    could observe the wait; returns False to request event fallback."""
    if env.bulk_holds:
        return False
    new_now = env.now + delay
    heap = env._heap
    if heap and heap[0][0] <= new_now:
        return False
    env.now = new_now
    return True


def run_serving_workload(backend_name, mix, fit_fraction, *, duration=2.0,
                         seed=0, cluster_config=None, fastswap_config=None,
                         slabs_per_target=24, prefetch_capacity=None,
                         fault_schedule=None, context=None, fast_path=False):
    """Serve ``mix`` (a list of TenantClassSpecs) open-loop.

    All classes contend for one store: the page space is the largest
    class workload's, the resident capacity is ``fit_fraction`` of it.
    Arrivals are generated for ``[0, duration)`` and the queue drains
    fully, so offered == completed at the end; requests arriving late
    in a collapsed system simply complete (and miss their SLO) late.
    """
    if not 0.0 < fit_fraction <= 1.0:
        raise ValueError("fit_fraction must be in (0, 1]")
    if not mix:
        raise ValueError("mix must name at least one tenant class")
    context = _resolve_context(context)
    cluster_config = cluster_config or default_cluster_config(seed=seed)
    cluster, node, backend = _build(
        backend_name, cluster_config, fastswap_config, slabs_per_target
    )
    _install_faults(cluster, fault_schedule)
    rng = cluster.rng
    store = max((spec.workload for spec in mix), key=lambda w: w.pages)
    pages = make_pages(
        store.pages,
        owner=backend_name,
        compressibility_sampler=store.compressibility.sampler(
            rng.stream("pages")
        ),
    )
    capacity = max(1, int(store.pages * fit_fraction))
    if prefetch_capacity is None:
        prefetch_capacity = max(128, capacity // 4)
    mmu = VirtualMemory(
        cluster.env,
        pages,
        capacity,
        backend,
        cpu=cluster_config.calibration.cpu,
        compute_per_access=store.compute_per_op,
        prefetch_capacity=prefetch_capacity,
        fallback_windows=_fallback_windows(fault_schedule),
    )
    if hasattr(backend, "bind_page_table"):
        backend.bind_page_table(mmu.pages, mmu.stats)

    queues = _generate_schedules(mix, rng, duration)
    accountant = SloAccountant()
    for queue in queues:
        accountant.account(queue.spec.qos).record_offered(
            len(queue.requests)
        )
    # Service order among ready classes: priority, then class index.
    order = sorted(queues, key=lambda q: (q.spec.qos.priority, q.index))
    env = cluster.env

    def server():
        yield from backend.setup()
        mmu.stats.start_time = env.now
        # Arrival timestamps are relative to service start: offered
        # load begins when the backend is up, so setup cost (slab
        # reservation etc.) is not billed to the first requests.
        epoch = env.now
        while True:
            ready = None
            next_arrival = float("inf")
            for queue in order:
                if queue.exhausted:
                    continue
                arrival = epoch + queue.head_arrival
                if arrival <= env.now:
                    ready = queue
                    break
                if arrival < next_arrival:
                    next_arrival = arrival
            if ready is None:
                if next_arrival == float("inf"):
                    break  # every queue drained
                delay = next_arrival - env.now
                if not (fast_path and _inline_jump(env, delay)):
                    yield env.timeout(delay)
                continue
            offset_arrival, first_page, count, is_write = ready.pop()
            arrival = epoch + offset_arrival
            if fast_path:
                yield from mmu.run_batch(AccessBatch(
                    list(range(first_page, first_page + count)),
                    [is_write] * count,
                ))
            else:
                for offset in range(count):
                    yield from mmu.access(first_page + offset,
                                          write=is_write)
            # Charge the accumulated cheap-path time now: completion
            # latency must include it (the event path's lazy
            # accumulation is an accounting trick, not a time machine).
            pending = mmu._pending_time
            if pending > 0.0:
                if fast_path and _inline_jump(env, pending):
                    mmu._pending_time = 0.0
                else:
                    yield from mmu._flush_pending()
            accountant.account(ready.spec.qos).record_completion(
                env.now - arrival
            )
        yield from mmu.flush()
        mmu.stats.end_time = env.now

    cluster.run_process(server(), name="serve:{}".format(backend_name))
    tier_stats, tier_stack = _collect_tier_stats(backend)
    users = sum(spec.tenants for spec in mix)
    offered = sum(len(queue.requests) for queue in queues)
    completed = sum(
        account.completed for _name, account in accountant
    )
    workload_name = "+".join(
        sorted({spec.workload.name for spec in mix})
    )
    result = ServingRunResult(
        backend=backend_name,
        workload=workload_name,
        fit_fraction=fit_fraction,
        duration=duration,
        users=users,
        offered=offered,
        completed=completed,
        goodput_rps=accountant.goodput(duration),
        fairness=accountant.fairness(),
        class_rows=accountant.rows(duration),
        accounts=accountant.to_json(),
        stats=mmu.stats.snapshot(),
        backend_stats=_collect_backend_stats(backend),
        tier_stats=tier_stats,
        tier_stack=tier_stack,
        latency_stats=_collect_latency_stats(cluster),
        context=context,
        fast_path=fast_path,
    )
    context.record(result)
    return result
