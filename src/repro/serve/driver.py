"""The open-loop multi-tenant serving driver.

One simulated front-end node serves the aggregate request streams of
several tenant classes (:class:`~repro.serve.qos.TenantClassSpec`)
against one swap backend under memory pressure.  Requests arrive
open-loop — the arrival processes do not wait for the server — so
queueing delay is real: a slow backend does not slow the offered load
down, it grows the queue, and latency (completion minus arrival)
shows it.  The :class:`~repro.serve.accountant.SloAccountant` turns
completions into goodput-under-SLO, violation fractions and fairness.

Scheduling: non-preemptive priority.  When the server frees up, the
highest-priority class with an admitted request waiting is served next
(FIFO within a class, class index breaks priority ties).  A request in
service always runs to completion.

Admission control sits at the arrival drain: the moment the server
first observes a request (its arrival time passes the clock), the
configured :class:`~repro.serve.admission.AdmissionPolicy` either
enqueues it or sheds it.  A shed request never touches the backend —
it acquires no service spans — and is billed to the accountant's
``shed`` counter, separate from SLO violations.  The default
:class:`~repro.serve.admission.NoShed` policy reproduces the
pre-admission driver exactly.

Two-speed execution
-------------------

The whole schedule is pre-materialized in bulk: class arrival arrays
are generated and superposed by :func:`repro.serve.arrivals.aggregate`
(one merged, admission-ordered timeline — no per-request heap pushes),
and each class's operations are flattened into one
:class:`~repro.workloads.batch.AccessBatch` plus per-request bounds
(:func:`~repro.workloads.batch.flatten_requests`).  Arrivals and
operations draw from *separate* named RNG streams, so the fast and
event paths consume identical randomness.  Under ``fast_path``:

* each request's page burst runs through
  :meth:`~repro.swap.base.VirtualMemory.run_batch` over its
  ``(start, stop)`` slice of the class batch (the flat-path kernel,
  byte-identical by its equivalence contract, with zero per-request
  array allocation);
* idle waits until the next arrival and the per-request pending-time
  flush are applied as direct clock jumps via
  :func:`~repro.sim.flatpath.inline_jump`, but only when the resulting
  timeout would pop *strictly before* everything already on the event
  heap and no bulk hold is active — a strict winner fires with nothing
  able to observe the wait, so adding to the clock is the identical
  float computation (``env._seq`` is deliberately not consumed, which
  shifts all later tie-break sequence numbers uniformly).

Admission decisions see only arrival timestamps, queue depths and the
clock at drain moments — identical on both paths — so shedding
preserves the equivalence contract.

Everything else — chaos windows, backend retries, fault-driver events
on the heap — falls back to the ordinary event engine, so serving
composes with :mod:`repro.faults` unchanged.
"""

from collections import deque
from dataclasses import dataclass, field

from repro.experiments.runner import (
    RunContext,
    RunResult,
    _build,
    _collect_backend_stats,
    _collect_latency_stats,
    _collect_tier_stats,
    _fallback_windows,
    _install_faults,
    _resolve_context,
    register_result_kind,
)
from repro.experiments.runner import default_cluster_config
from repro.mem.page import make_pages
from repro.serve.accountant import SloAccountant
from repro.serve.admission import NoShed
from repro.serve.arrivals import aggregate
from repro.sim.flatpath import inline_jump
from repro.swap.base import VirtualMemory
from repro.workloads.batch import flatten_requests

__all__ = ["ServingRunResult", "run_serving_workload"]


@register_result_kind
@dataclass
class ServingRunResult(RunResult):
    """Outcome of one open-loop serving run."""

    backend: str
    workload: str
    fit_fraction: float
    duration: float
    #: Simulated users: the sum of all classes' tenant counts.
    users: int
    offered: int
    completed: int
    #: Aggregate requests/s that met their class SLO.
    goodput_rps: float
    #: Jain fairness over per-class SLO attainment.
    fairness: float
    #: Requests refused by admission control (never served).
    shed: int = 0
    #: Offered load that passed admission (``offered - shed``).
    admitted: int = 0
    #: The admission policy's JSON form (``{"policy": "none"}`` etc.).
    policy: dict = field(default_factory=dict)
    #: Per-class accounting rows (goodput, violations, percentiles).
    class_rows: list = field(default_factory=list)
    #: The accountant's JSON form (mergeable across runs).
    accounts: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    backend_stats: dict = field(default_factory=dict)
    tier_stats: list = field(default_factory=list)
    tier_stack: str = ""
    latency_stats: list = field(default_factory=list)
    #: The RunContext this run recorded into (not serialized).
    context: RunContext = field(default=None, repr=False, compare=False)
    #: Whether the run drove the flat-path kernel (not serialized).
    fast_path: bool = field(default=False, compare=False)

    kind = "serving"

    def row(self):
        return {
            "backend": self.backend,
            "workload": self.workload,
            "fit": self.fit_fraction,
            "users": self.users,
            "offered": self.offered,
            "goodput_rps": self.goodput_rps,
            "fairness": self.fairness,
        }


def run_serving_workload(backend_name, mix, fit_fraction, *, duration=2.0,
                         seed=0, cluster_config=None, fastswap_config=None,
                         slabs_per_target=24, prefetch_capacity=None,
                         fault_schedule=None, admission=None, context=None,
                         fast_path=False):
    """Serve ``mix`` (a list of TenantClassSpecs) open-loop.

    All classes contend for one store: the page space is the largest
    class workload's, the resident capacity is ``fit_fraction`` of it.
    Arrivals are generated for ``[0, duration)`` and the admitted queue
    drains fully, so ``offered == completed + shed`` at the end;
    requests arriving late in a collapsed system simply complete (and
    miss their SLO) late.  ``admission`` is an
    :class:`~repro.serve.admission.AdmissionPolicy` (default: admit
    everything).
    """
    if not 0.0 < fit_fraction <= 1.0:
        raise ValueError("fit_fraction must be in (0, 1]")
    if not mix:
        raise ValueError("mix must name at least one tenant class")
    if admission is None:
        admission = NoShed()
    context = _resolve_context(context)
    cluster_config = cluster_config or default_cluster_config(seed=seed)
    cluster, node, backend = _build(
        backend_name, cluster_config, fastswap_config, slabs_per_target
    )
    _install_faults(cluster, fault_schedule)
    rng = cluster.rng
    store = max((spec.workload for spec in mix), key=lambda w: w.pages)
    pages = make_pages(
        store.pages,
        owner=backend_name,
        compressibility_sampler=store.compressibility.sampler(
            rng.stream("pages")
        ),
    )
    capacity = max(1, int(store.pages * fit_fraction))
    if prefetch_capacity is None:
        prefetch_capacity = max(128, capacity // 4)
    mmu = VirtualMemory(
        cluster.env,
        pages,
        capacity,
        backend,
        cpu=cluster_config.calibration.cpu,
        compute_per_access=store.compute_per_op,
        prefetch_capacity=prefetch_capacity,
        fallback_windows=_fallback_windows(fault_schedule),
    )
    if hasattr(backend, "bind_page_table"):
        backend.bind_page_table(mmu.pages, mmu.stats)

    # The batched schedule: one merged arrival timeline across classes
    # (admission order), one flattened access batch per class.
    schedule = aggregate(mix, rng, duration)
    batches = []
    all_bounds = []
    for index, spec in enumerate(mix):
        operations = spec.ops_batch(
            rng.stream("serve-ops{}".format(index)),
            schedule.per_class[index],
        )
        batch, bounds = flatten_requests(operations)
        batches.append(batch)
        all_bounds.append(bounds)

    accountant = SloAccountant()
    accounts = []
    for index, spec in enumerate(mix):
        account = accountant.account(spec.qos)
        account.record_offered(schedule.per_class[index])
        accounts.append(account)
    # Service order among ready classes: priority, then class index.
    order = sorted(range(len(mix)), key=lambda i: (mix[i].qos.priority, i))
    admission.reset(mix)
    env = cluster.env

    def server():
        yield from backend.setup()
        mmu.stats.start_time = env.now
        # Arrival timestamps are relative to service start: offered
        # load begins when the backend is up, so setup cost (slab
        # reservation etc.) is not billed to the first requests.
        epoch = env.now
        times = schedule.times
        classes = schedule.classes
        total = len(times)
        pos = 0
        #: Per-class FIFO of admitted ``(ordinal, arrival)`` pairs.
        queues = [deque() for _spec in mix]
        #: Next request ordinal per class (indexes the bounds arrays).
        ordinals = [0] * len(mix)
        tracer = env.tracer
        while True:
            # Admission drain: offer the policy every request whose
            # arrival time the clock has passed, in merged order.
            while pos < total:
                offset_arrival = times[pos]
                arrival = epoch + offset_arrival
                if arrival > env.now:
                    break
                index = classes[pos]
                spec = mix[index]
                queue = queues[index]
                ordinal = ordinals[index]
                ordinals[index] = ordinal + 1
                pos += 1
                # The policy's congestion signal: how long the oldest
                # admitted request has been waiting (scheduling lag).
                oldest = None
                for pending in queues:
                    if pending and (oldest is None
                                    or pending[0][1] < oldest):
                        oldest = pending[0][1]
                lag = 0.0 if oldest is None else env.now - oldest
                if admission.admit(index, spec, offset_arrival,
                                   lag, len(queue)):
                    queue.append((ordinal, arrival))
                else:
                    accounts[index].record_shed()
                    if tracer.enabled:
                        tracer.instant(
                            "admit.shed",
                            qos=spec.qos.name,
                            tenant_class=index,
                            request=ordinal,
                        )
            ready = -1
            for index in order:
                if queues[index]:
                    ready = index
                    break
            if ready < 0:
                if pos >= total:
                    break  # every arrival drained and served
                delay = (epoch + times[pos]) - env.now
                if not (fast_path and inline_jump(env, delay)):
                    yield env.timeout(delay)
                continue
            ordinal, arrival = queues[ready].popleft()
            spec = mix[ready]
            bounds = all_bounds[ready]
            start, stop = bounds[ordinal], bounds[ordinal + 1]
            span = (
                tracer.begin("serve.request", qos=spec.qos.name,
                             tenant_class=ready, request=ordinal)
                if tracer.enabled else None
            )
            if fast_path:
                yield from mmu.run_batch(batches[ready], start, stop)
            else:
                addresses = batches[ready].addresses
                writes = batches[ready].writes
                for offset in range(start, stop):
                    yield from mmu.access(addresses[offset],
                                          write=writes[offset])
            # Charge the accumulated cheap-path time now: completion
            # latency must include it (the event path's lazy
            # accumulation is an accounting trick, not a time machine).
            pending = mmu._pending_time
            if pending > 0.0:
                if fast_path and inline_jump(env, pending):
                    mmu._pending_time = 0.0
                else:
                    yield from mmu._flush_pending()
            if span is not None:
                tracer.end(span, accesses=stop - start)
            accounts[ready].record_completion(env.now - arrival)
        yield from mmu.flush()
        mmu.stats.end_time = env.now

    cluster.run_process(server(), name="serve:{}".format(backend_name))
    tier_stats, tier_stack = _collect_tier_stats(backend)
    users = sum(spec.tenants for spec in mix)
    offered = len(schedule)
    completed = sum(
        account.completed for _name, account in accountant
    )
    shed = sum(account.shed for _name, account in accountant)
    workload_name = "+".join(
        sorted({spec.workload.name for spec in mix})
    )
    result = ServingRunResult(
        backend=backend_name,
        workload=workload_name,
        fit_fraction=fit_fraction,
        duration=duration,
        users=users,
        offered=offered,
        completed=completed,
        goodput_rps=accountant.goodput(duration),
        fairness=accountant.fairness(),
        shed=shed,
        admitted=offered - shed,
        policy=admission.to_json(),
        class_rows=accountant.rows(duration),
        accounts=accountant.to_json(),
        stats=mmu.stats.snapshot(),
        backend_stats=_collect_backend_stats(backend),
        tier_stats=tier_stats,
        tier_stack=tier_stack,
        latency_stats=_collect_latency_stats(cluster),
        context=context,
        fast_path=fast_path,
    )
    context.record(result)
    return result
