"""Admission control: shed load at the door instead of queueing it.

An open-loop server under overload has exactly one honest choice:
refuse work.  The driver's queues are unbounded, so without admission
control a collapsed cell queues for (simulated) hours and every class
misses its SLO — the paper's overload discussion, reproduced.  An
:class:`AdmissionPolicy` sits at the arrival drain: every request is
offered to the policy the moment the server first observes it, and a
refused request is *shed* — it never touches the backend, acquires no
service spans, and is billed separately from SLO violations (see
:class:`~repro.serve.accountant.ClassAccount`).

Determinism: policies decide from arrival timestamps, queue depths and
the server's lateness at the drain moment — quantities that are
byte-identical between the event-engine and flat-path executions (the
two-speed equivalence contract), so enabling a policy keeps
``fast_path`` equivalence and serial==parallel reports intact.

The built-in policies cover the classic design space:

* :class:`NoShed` — the baseline: admit everything, queue unboundedly;
* :class:`StaticCaps` — per-class token buckets over *arrival* time
  (provisioned admission: each class bought a fixed request rate);
* :class:`QueueDepthShed` — bound each class's queue; arrivals beyond
  the bound are shed (bounded-buffer drop-tail);
* :class:`UtilizationFeedback` — a hysteresis controller on the
  server's lateness (how far behind arrival time the drain runs) that
  sheds whole classes in strict reverse-priority order: bestEffort
  first, then silver, and never gold at the default ``max_level``.
"""

from repro.serve.qos import QOS_CLASSES

__all__ = [
    "AdmissionPolicy",
    "NoShed",
    "StaticCaps",
    "QueueDepthShed",
    "UtilizationFeedback",
    "make_admission_policy",
]


class AdmissionPolicy:
    """Contract: one admit/shed verdict per arriving request.

    A policy instance carries mutable controller state; the driver
    calls :meth:`reset` once per run, then :meth:`admit` exactly once
    per offered request, in merged arrival order (ties broken by class
    index — the :class:`~repro.serve.arrivals.ArrivalSchedule` order).
    """

    name = "abstract"

    def reset(self, mix):
        """Start a fresh run over ``mix`` (a list of TenantClassSpecs)."""

    def admit(self, index, spec, arrival_s, lag_s, depth):
        """True to enqueue the request, False to shed it.

        ``index``/``spec`` name the tenant class, ``arrival_s`` is the
        request's arrival timestamp (relative to the serving epoch),
        ``lag_s`` the server's scheduling lag at this moment — how
        long the *oldest* admitted-but-unserved request has been
        waiting (0 when every queue is empty: the backlog signal) —
        and ``depth`` the class's current queue depth.
        """
        raise NotImplementedError

    def to_json(self):
        return {"policy": self.name}


class NoShed(AdmissionPolicy):
    """The baseline: admit everything (the pre-admission driver)."""

    name = "none"

    def admit(self, index, spec, arrival_s, lag_s, depth):
        return True


class StaticCaps(AdmissionPolicy):
    """Per-class admitted-rate caps: a token bucket per class.

    ``caps`` maps class names (QoS names) to the maximum admitted rate
    in requests per second; unmapped classes (and ``None`` caps) are
    unlimited.  Buckets refill in *arrival* time — the cap is a
    property of the offered schedule, not of how fast the server
    happens to drain it — and hold at most ``burst_s`` seconds of
    tokens, so a class can burst briefly above its cap but not ride a
    long silence into one.
    """

    name = "static-caps"

    def __init__(self, caps, burst_s=0.1):
        if burst_s <= 0:
            raise ValueError("burst_s must be positive")
        self.caps = dict(caps)
        self.burst_s = burst_s
        self._tokens = {}
        self._last = {}

    def reset(self, mix):
        self._tokens = {}
        self._last = {}
        for index, spec in enumerate(mix):
            cap = self.caps.get(spec.qos.name)
            if cap is not None and cap < 0:
                raise ValueError("caps must be non-negative")
            if cap is not None:
                self._tokens[index] = max(1.0, cap * self.burst_s)
                self._last[index] = 0.0

    def admit(self, index, spec, arrival_s, lag_s, depth):
        cap = self.caps.get(spec.qos.name)
        if cap is None:
            return True
        tokens = self._tokens[index]
        tokens = min(
            max(1.0, cap * self.burst_s),
            tokens + (arrival_s - self._last[index]) * cap,
        )
        self._last[index] = arrival_s
        if tokens >= 1.0:
            self._tokens[index] = tokens - 1.0
            return True
        self._tokens[index] = tokens
        return False

    def to_json(self):
        return {
            "policy": self.name,
            "caps": {name: self.caps[name] for name in sorted(self.caps)},
            "burst_s": self.burst_s,
        }


class QueueDepthShed(AdmissionPolicy):
    """Bounded queues: shed arrivals of a class whose queue is full.

    ``limits`` maps class names to the maximum pending depth; unmapped
    classes (and ``None`` limits) are unbounded.  Drop-tail on a
    per-class buffer: the crudest real-world shedder, and the
    benchmark the cleverer policies must beat — under *sustained*
    overload a full buffer keeps the server busy anyway, so the policy
    only wins when load arrives in bursts the bounded backlog can
    drain between (which phase-aligned tenant bursts guarantee).
    """

    name = "queue-depth"

    def __init__(self, limits):
        self.limits = dict(limits)
        for limit in self.limits.values():
            if limit is not None and limit < 1:
                raise ValueError("depth limits must be >= 1")

    def admit(self, index, spec, arrival_s, lag_s, depth):
        limit = self.limits.get(spec.qos.name)
        return limit is None or depth < limit

    def to_json(self):
        return {
            "policy": self.name,
            "limits": {
                name: self.limits[name] for name in sorted(self.limits)
            },
        }


class UtilizationFeedback(AdmissionPolicy):
    """Hysteresis controller on scheduling lag, shedding by priority.

    The control signal is ``lag_s`` — how long the oldest admitted
    request has been sitting unserved, i.e. the queueing delay the
    server is currently imposing on its backlog.  (Drain lateness
    would be the wrong signal: a server that completes one request
    every few milliseconds observes arrivals promptly however many
    seconds of work are queued behind them.)  At most once per
    ``period_s`` of arrival time the shed level moves one step: up
    when lag exceeds ``high_s``, down when it falls below ``low_s``.
    At level ``L`` every class with ``priority > max_priority - L`` is
    shed — bestEffort first, then silver; ``max_level`` defaults to 2
    so gold is never shed, however far behind the server runs (gold
    pays for that promise with its own queueing, never refusals).
    """

    name = "feedback"

    def __init__(self, high_s=0.04, low_s=0.01, period_s=0.02, max_level=2):
        if not 0.0 <= low_s < high_s:
            raise ValueError("need 0 <= low_s < high_s")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if max_level < 0:
            raise ValueError("max_level must be >= 0")
        self.high_s = high_s
        self.low_s = low_s
        self.period_s = period_s
        self.max_level = max_level
        self.level = 0
        self._next_eval = 0.0
        self._max_priority = max(
            qos.priority for qos in QOS_CLASSES.values()
        )

    def reset(self, mix):
        self.level = 0
        self._next_eval = 0.0
        priorities = [spec.qos.priority for spec in mix]
        self._max_priority = max(priorities) if priorities else 0

    def admit(self, index, spec, arrival_s, lag_s, depth):
        if arrival_s >= self._next_eval:
            if lag_s > self.high_s and self.level < self.max_level:
                self.level += 1
            elif lag_s < self.low_s and self.level > 0:
                self.level -= 1
            self._next_eval = arrival_s + self.period_s
        return spec.qos.priority <= self._max_priority - self.level

    def to_json(self):
        return {
            "policy": self.name,
            "high_s": self.high_s,
            "low_s": self.low_s,
            "period_s": self.period_s,
            "max_level": self.max_level,
        }


_POLICIES = {
    cls.name: cls
    for cls in (NoShed, StaticCaps, QueueDepthShed, UtilizationFeedback)
}


def make_admission_policy(kind, **params):
    """Factory keyed on the ``kind`` strings experiments sweep over."""
    try:
        cls = _POLICIES[kind]
    except KeyError:
        raise ValueError(
            "unknown admission policy {!r}; expected one of {}".format(
                kind, sorted(_POLICIES)
            )
        ) from None
    return cls(**params)
