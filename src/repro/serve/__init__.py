"""Open-loop multi-tenant serving: arrivals, QoS classes, SLO accounting.

This package turns the simulator into a production-style serving
testbed (the paper's serving discussion, scaled down): tenant classes
with arrival processes offer load open-loop, one front-end node under
memory pressure serves it through a swap backend, and an accountant
scores the outcome against per-class latency SLOs.

* :mod:`repro.serve.arrivals` — Poisson, bursty (MMPP) and diurnal
  arrival processes, with tenant aggregation (a hundred thousand
  tenants cost one stream);
* :mod:`repro.serve.qos` — QoS classes (gold / silver / bestEffort)
  and :class:`~repro.serve.qos.TenantClassSpec`, the open-loop
  implementation of the unified WorkloadSpec protocol;
* :mod:`repro.serve.accountant` — goodput-under-SLO, violation
  fractions, Jain fairness; mergeable across workers;
* :mod:`repro.serve.driver` — the priority-scheduled serving loop on
  the two-speed engine.

See ``docs/SERVING.md`` for the methodology.
"""

from repro.serve.accountant import ClassAccount, SloAccountant, jain_fairness
from repro.serve.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrival_process,
)
from repro.serve.driver import ServingRunResult, run_serving_workload
from repro.serve.qos import QOS_CLASSES, QosClass, TenantClassSpec, default_mix

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "ClassAccount",
    "DiurnalArrivals",
    "PoissonArrivals",
    "QOS_CLASSES",
    "QosClass",
    "ServingRunResult",
    "SloAccountant",
    "TenantClassSpec",
    "default_mix",
    "jain_fairness",
    "make_arrival_process",
    "run_serving_workload",
]
