"""Open-loop multi-tenant serving: arrivals, QoS classes, SLO accounting.

This package turns the simulator into a production-style serving
testbed (the paper's serving discussion, scaled down): tenant classes
with arrival processes offer load open-loop, one front-end node under
memory pressure serves it through a swap backend, and an accountant
scores the outcome against per-class latency SLOs.

* :mod:`repro.serve.arrivals` — Poisson, bursty (MMPP) and diurnal
  arrival processes, with tenant aggregation (a hundred thousand
  tenants cost one stream) and batched schedule superposition
  (:func:`~repro.serve.arrivals.aggregate` →
  :class:`~repro.serve.arrivals.ArrivalSchedule`);
* :mod:`repro.serve.qos` — QoS classes (gold / silver / bestEffort)
  and :class:`~repro.serve.qos.TenantClassSpec`, the open-loop
  implementation of the unified WorkloadSpec protocol;
* :mod:`repro.serve.admission` — pluggable admission control: static
  per-class caps, queue-depth load shedding, utilization feedback;
* :mod:`repro.serve.accountant` — goodput-under-SLO, violation
  fractions, shed accounting, Jain fairness; mergeable across workers;
* :mod:`repro.serve.driver` — the priority-scheduled serving loop on
  the two-speed engine.

See ``docs/SERVING.md`` for the methodology.
"""

from repro.serve.accountant import ClassAccount, SloAccountant, jain_fairness
from repro.serve.admission import (
    AdmissionPolicy,
    NoShed,
    QueueDepthShed,
    StaticCaps,
    UtilizationFeedback,
    make_admission_policy,
)
from repro.serve.arrivals import (
    ArrivalProcess,
    ArrivalSchedule,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    aggregate,
    make_arrival_process,
)
from repro.serve.driver import ServingRunResult, run_serving_workload
from repro.serve.qos import QOS_CLASSES, QosClass, TenantClassSpec, default_mix

__all__ = [
    "AdmissionPolicy",
    "ArrivalProcess",
    "ArrivalSchedule",
    "BurstyArrivals",
    "ClassAccount",
    "DiurnalArrivals",
    "NoShed",
    "PoissonArrivals",
    "QOS_CLASSES",
    "QosClass",
    "QueueDepthShed",
    "ServingRunResult",
    "SloAccountant",
    "StaticCaps",
    "TenantClassSpec",
    "UtilizationFeedback",
    "aggregate",
    "default_mix",
    "jain_fairness",
    "make_arrival_process",
    "make_admission_policy",
    "run_serving_workload",
]
