"""SLO accounting: goodput, violation fractions, cross-class fairness.

The :class:`SloAccountant` is the serving driver's scoreboard.  Every
completed request records its latency (completion minus arrival, so
queueing delay counts) into a per-class
:class:`~repro.trace.histogram.LatencyHistogram` and a pair of
counters; from those it reports the quantities the paper's serving
discussion cares about:

* **goodput-under-SLO** — requests per second that *met* their class
  SLO (raw throughput flatters a system that serves best-effort while
  gold requests rot in the queue);
* **per-class violation fraction** — the share of completed requests
  over SLO;
* **Jain fairness** over per-class SLO attainment — 1.0 when every
  class meets its SLO equally, 1/n when one class takes everything.

Accountants merge (histograms and counters add), so per-worker
accounting in a parallel sweep folds into the same numbers a serial
run produces — the serving analogue of the engine's byte-identical
cells contract.
"""

from repro.trace.histogram import LatencyHistogram

__all__ = ["ClassAccount", "SloAccountant", "jain_fairness"]

#: Histogram shape for request latencies: 100 ns resolution spans a
#: DRAM-speed hit to ~10k seconds of queueing collapse in 40 buckets.
_LEAST = 1e-7
_BUCKETS = 40


def jain_fairness(values):
    """Jain's index: ``(sum x)^2 / (n * sum x^2)``, in ``[1/n, 1]``."""
    values = list(values)
    if not values:
        return 1.0
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(value * value for value in values)
    if sum_of_squares == 0.0:
        return 1.0
    return square_of_sum / (len(values) * sum_of_squares)


class ClassAccount:
    """One QoS class's counters + latency histogram."""

    __slots__ = ("name", "slo_s", "offered", "completed", "slo_met",
                 "shed", "histogram")

    def __init__(self, name, slo_s):
        self.name = name
        self.slo_s = slo_s
        #: Requests that arrived (offered load), completed or not.
        self.offered = 0
        self.completed = 0
        #: Completed within the class SLO.
        self.slo_met = 0
        #: Refused by admission control: never served, never completed.
        #: Billed separately from SLO violations — a shed request is an
        #: explicit refusal, a violation is a broken promise.
        self.shed = 0
        self.histogram = LatencyHistogram(least=_LEAST, buckets=_BUCKETS)

    def record_offered(self, count=1):
        self.offered += count

    def record_shed(self, count=1):
        self.shed += count

    def record_completion(self, latency):
        self.completed += 1
        self.histogram.record(latency)
        if latency <= self.slo_s:
            self.slo_met += 1

    # -- derived -----------------------------------------------------------

    @property
    def admitted(self):
        """Offered load that passed admission (the queueable share)."""
        return self.offered - self.shed

    @property
    def shed_fraction(self):
        """Share of offered load refused by admission control."""
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    @property
    def violation_fraction(self):
        """Share of *completed* requests over SLO."""
        if self.completed == 0:
            return 0.0
        return 1.0 - self.slo_met / self.completed

    @property
    def attainment(self):
        """SLO-met share of *offered* load (unserved requests count
        against the class — a starved class attains nothing)."""
        if self.offered == 0:
            return 1.0
        return self.slo_met / self.offered

    def within(self, threshold):
        """Share of *offered* load completed at or below ``threshold``.

        Unlike :attr:`attainment` this evaluates every class at the
        *same* latency envelope, which is the quantity a priority
        scheduler actually orders: gold's delay distribution dominates
        best-effort's at any common threshold, while per-class SLOs of
        different widths can rank either way (a 25 ms backlog violates
        a 20 ms gold SLO but not a 200 ms best-effort one).  Estimated
        from the latency histogram (see
        :meth:`~repro.trace.histogram.LatencyHistogram.cdf`).
        """
        if self.offered == 0:
            return 1.0
        return self.histogram.cdf(threshold) * self.completed / self.offered

    def merge(self, other):
        if (self.name, self.slo_s) != (other.name, other.slo_s):
            raise ValueError("cannot merge accounts of different classes")
        self.offered += other.offered
        self.completed += other.completed
        self.slo_met += other.slo_met
        self.shed += other.shed
        self.histogram.merge(other.histogram)
        return self

    def to_json(self):
        return {
            "name": self.name,
            "slo_s": self.slo_s,
            "offered": self.offered,
            "completed": self.completed,
            "slo_met": self.slo_met,
            "shed": self.shed,
            "histogram": self.histogram.to_json(),
        }

    @classmethod
    def from_json(cls, doc):
        account = cls(doc["name"], doc["slo_s"])
        account.offered = doc["offered"]
        account.completed = doc["completed"]
        account.slo_met = doc["slo_met"]
        # Pre-admission-control documents have no shed counter.
        account.shed = doc.get("shed", 0)
        account.histogram = LatencyHistogram.from_json(doc["histogram"])
        return account


class SloAccountant:
    """Per-class SLO scoreboard for one serving run (or one worker)."""

    def __init__(self):
        self._accounts = {}

    def account(self, qos):
        """The (lazily created) account for a :class:`QosClass`."""
        existing = self._accounts.get(qos.name)
        if existing is None:
            existing = ClassAccount(qos.name, qos.slo_s)
            self._accounts[qos.name] = existing
        elif existing.slo_s != qos.slo_s:
            raise ValueError(
                "class {!r} already tracked with a different SLO".format(
                    qos.name
                )
            )
        return existing

    def __len__(self):
        return len(self._accounts)

    def __iter__(self):
        return iter(sorted(self._accounts.items()))

    def get(self, name):
        return self._accounts.get(name)

    # -- reporting ---------------------------------------------------------

    def goodput(self, duration):
        """Aggregate requests-per-second that met their class SLO."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return sum(a.slo_met for a in self._accounts.values()) / duration

    def class_goodput(self, name, duration):
        account = self._accounts[name]
        return account.slo_met / duration

    def fairness(self):
        """Jain's index over per-class SLO attainment."""
        return jain_fairness(
            account.attainment for _name, account in self
        )

    def envelope(self):
        """The loosest SLO across tracked classes — the common latency
        threshold cross-class dominance is judged at."""
        if not self._accounts:
            return 0.0
        return max(account.slo_s for account in self._accounts.values())

    def rows(self, duration):
        """One flat report row per class, deterministically ordered."""
        envelope = self.envelope()
        rows = []
        for name, account in self:
            row = {
                "class": name,
                "slo_s": account.slo_s,
                "offered": account.offered,
                "admitted": account.admitted,
                "shed": account.shed,
                "shed_fraction": account.shed_fraction,
                "completed": account.completed,
                "slo_met": account.slo_met,
                "goodput_rps": account.slo_met / duration,
                "violation_fraction": account.violation_fraction,
                "attainment": account.attainment,
                "envelope_s": envelope,
                "envelope_attainment": account.within(envelope),
            }
            row.update(
                (key, value)
                for key, value in account.histogram.snapshot().items()
                if key != "count"
            )
            rows.append(row)
        return rows

    # -- merging / serialization -------------------------------------------

    def merge(self, other):
        """Fold another accountant in (associative; see module doc)."""
        for name, account in other._accounts.items():
            mine = self._accounts.get(name)
            if mine is None:
                self._accounts[name] = ClassAccount.from_json(
                    account.to_json()
                )
            else:
                mine.merge(account)
        return self

    def to_json(self):
        return [account.to_json() for _name, account in self]

    @classmethod
    def from_json(cls, docs):
        accountant = cls()
        for doc in docs:
            accountant._accounts[doc["name"]] = ClassAccount.from_json(doc)
        return accountant
