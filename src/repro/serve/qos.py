"""QoS classes and tenant classes for open-loop serving.

A :class:`QosClass` is a service tier — a scheduling priority plus a
latency SLO.  A :class:`TenantClassSpec` is what the serving driver
actually runs: *many* identical tenants of one QoS class collapsed
into a single aggregate request stream (see
:mod:`repro.serve.arrivals` for why superposition makes the tenant
count free), issuing operations from a shared KV-style workload spec.

``TenantClassSpec`` implements the unified WorkloadSpec protocol of
:mod:`repro.workloads.spec` — ``name`` / ``pages`` /
``compressibility`` / ``iter_accesses`` / ``as_batch`` — with the
``arrival_process`` hook *populated*: this is the open-loop spec the
protocol reserved the hook for, and ``as_batch`` fills
``AccessBatch.gaps`` from the arrival process.
"""

from dataclasses import dataclass, field, replace

from repro.serve.arrivals import make_arrival_process
from repro.workloads.kv import KV_WORKLOADS

__all__ = [
    "QosClass",
    "QOS_CLASSES",
    "TenantClassSpec",
    "default_mix",
]


@dataclass(frozen=True)
class QosClass:
    """One service tier: who gets scheduled first, and what they were
    promised."""

    name: str
    #: Scheduling priority: lower fires first (gold = 0).
    priority: int
    #: Latency SLO in seconds (arrival to completion).
    slo_s: float

    def __post_init__(self):
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")


#: The three service tiers every serving experiment sweeps.  SLOs are
#: set relative to the simulator's fault-path costs (an HDD fault is
#: ~8 ms, a remote fault ~10 us): gold tolerates one disk fault but
#: not sustained queueing, silver tolerates a short backlog,
#: best-effort only asks not to starve outright.  Keeping every SLO
#: above the worst single-request service time is what makes
#: attainment monotone in priority — violations then measure
#: *queueing*, which the priority scheduler orders, rather than
#: unlucky device draws, which it cannot.
QOS_CLASSES = {
    "gold": QosClass("gold", priority=0, slo_s=2.0e-2),
    "silver": QosClass("silver", priority=1, slo_s=5.0e-2),
    "bestEffort": QosClass("bestEffort", priority=2, slo_s=2.0e-1),
}


@dataclass(frozen=True)
class TenantClassSpec:
    """One tenant class: ``tenants`` identical open-loop clients.

    The class's aggregate request stream is
    ``arrival.aggregate(tenants)``; each request is one operation of
    ``workload`` (a KV-style spec).  Request count — and therefore
    simulation cost — scales with ``duration * tenants *
    per_tenant_rate``, never with ``tenants`` alone.
    """

    qos: QosClass
    #: Number of identical tenants aggregated into this class.
    tenants: int
    #: Request rate of one tenant, in requests per second.
    per_tenant_rate: float
    #: Arrival process kind: "poisson", "bursty" or "diurnal".
    arrival_kind: str = "poisson"
    #: Extra arrival-process parameters (e.g. ``on_fraction``).
    arrival_params: dict = field(default_factory=dict)
    #: The operation mix all tenants of the class share.
    workload: object = field(
        default_factory=lambda: KV_WORKLOADS["memcached"]
    )

    def __post_init__(self):
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.per_tenant_rate <= 0:
            raise ValueError("per_tenant_rate must be positive")

    # -- identity ----------------------------------------------------------

    @property
    def name(self):
        return "{}:{}".format(self.qos.name, self.workload.name)

    @property
    def pages(self):
        return self.workload.pages

    @property
    def compressibility(self):
        return self.workload.compressibility

    @property
    def aggregate_rate(self):
        return self.tenants * self.per_tenant_rate

    # -- WorkloadSpec protocol ---------------------------------------------

    @property
    def arrival_process(self):
        """The class's aggregate arrival stream (the open-loop hook)."""
        return make_arrival_process(
            self.arrival_kind, self.per_tenant_rate, **self.arrival_params
        ).aggregate(self.tenants)

    def iter_operations(self, rng):
        return self.workload.iter_operations(rng)

    def ops_batch(self, rng, count):
        return self.workload.ops_batch(rng, count)

    def iter_accesses(self, rng):
        return self.workload.iter_accesses(rng)

    def as_batch(self, rng, length, arrival_rng=None, duration=None):
        """``length`` operations, page-expanded, with ``gaps`` filled
        from the arrival process when ``arrival_rng`` and ``duration``
        are given (each operation's first page carries the wait before
        its request; burst pages follow back to back)."""
        batch = self.workload.as_batch(rng, length)
        if arrival_rng is None or duration is None:
            return batch
        gaps = []
        arrival_gaps = self.arrival_process.gaps(arrival_rng, duration)
        per_op = self.workload.pages_per_key
        for gap in arrival_gaps[: len(batch) // per_op]:
            gaps.append(gap)
            gaps.extend(0.0 for _ in range(per_op - 1))
        if len(gaps) < len(batch):
            return replace_batch_prefix(batch, gaps)
        batch.gaps = gaps
        return batch

    def with_overrides(self, **kwargs):
        return replace(self, **kwargs)


def replace_batch_prefix(batch, gaps):
    """Trim ``batch`` to the accesses covered by ``gaps`` (an arrival
    window shorter than the requested operation count)."""
    from repro.workloads.batch import AccessBatch

    count = len(gaps)
    return AccessBatch(batch.addresses[:count], batch.writes[:count], gaps)


def default_mix(tenants_per_class=40_000, arrival_kind="poisson",
                workload=None, per_tenant_rate=0.005, arrival_params=None):
    """The standard three-class mix (one class per QoS tier).

    Defaults give ``3 * tenants_per_class`` simulated users; with
    40k tenants per class at 5 mrps each, the aggregate offered load
    is 600 requests per simulated second across 120k users.
    """
    workload = workload or KV_WORKLOADS["memcached"]
    params = dict(arrival_params or {})
    return [
        TenantClassSpec(
            qos=QOS_CLASSES[name],
            tenants=tenants_per_class,
            per_tenant_rate=per_tenant_rate,
            arrival_kind=arrival_kind,
            arrival_params=params,
            workload=workload,
        )
        for name in ("gold", "silver", "bestEffort")
    ]
