"""Executes rebalance plans as simulated events (live page migration).

The migration protocol is the paper's atomicity rule ("every remote
operation is atomic — only a completed operation updates the map")
applied to a move between two memory servers:

1. **stage** — open the dual-entry window in the owner's disaggregated
   memory map (readers keep being served by the source replica);
2. **reserve** — a control RPC reserves receive-pool space on the
   destination (the destination now physically holds a second, not yet
   visible, copy);
3. **copy** — the page travels source → destination as a one-sided
   RDMA transfer, charged on the fabric like any other data movement;
4. **remap** — the owner's map atomically swaps the replica pointer
   (commit); readers now resolve to the destination;
5. **invalidate** — the source copy is freed (best effort: a source
   that died mid-protocol lost the copy anyway).

Any failure before the remap aborts: the window closes, the
destination reservation is released (or vanishes with the crashed
destination), and the map still points at the source — a page is never
lost or duplicated by a migration, whatever crashes underneath it
(:mod:`repro.faults` composes freely with this engine).
"""

from repro.core.errors import ControlTimeout
from repro.net.errors import NetworkError
from repro.net.rdma import RemoteAccessError


class MigrationEngine:
    """Turns :class:`~repro.balance.policies.RebalancePlan` into events."""

    def __init__(self, cluster, metrics):
        self.cluster = cluster
        self.env = cluster.env
        self.metrics = metrics

    def execute(self, plan):
        """Generator: apply one plan — slab orders first, then pages.

        Slab transfers go first so a freshly grown destination pool can
        absorb the page migrations of the same epoch.  The whole plan
        runs under a flat-path bulk hold: while slabs or pages are
        mid-move the simulation is inside a migration epoch, and the
        two-speed engine must route every access through the event
        engine rather than bulk over the window.
        """
        self.env.hold_bulk()
        try:
            for order in plan.slab_orders:
                yield from self.apply_slab_order(order)
            moved = 0
            for budget in plan.migrations:
                moved += yield from self.apply_budget(budget)
        finally:
            self.env.release_bulk()
        return moved

    # -- donation (slab ownership) ------------------------------------------

    def apply_slab_order(self, order):
        """Generator: transfer/shrink/grow whole receive-pool slabs."""
        cluster = self.cluster
        if order.src is not None and cluster.is_down(order.src):
            return
        if order.dst is not None and cluster.is_down(order.dst):
            return
        if order.src is not None and order.dst is not None:
            src_pool = cluster.node(order.src).receive_pool
            dst_pool = cluster.node(order.dst).receive_pool
            moved = yield from src_pool.migrate_slabs(dst_pool, order.slabs)
            self.metrics.slabs_transferred += moved
        elif order.src is not None:
            removed = cluster.node(order.src).receive_pool.shrink(order.slabs)
            self.metrics.slabs_shrunk += removed
        else:
            yield from cluster.node(order.dst).receive_pool.grow(order.slabs)
            self.metrics.slabs_grown += order.slabs

    # -- page migration ------------------------------------------------------

    def apply_budget(self, budget):
        """Generator: migrate hosted entries until the budget is spent.

        Entries are taken from the source's hosting table in insertion
        order (oldest first); an entry that would overshoot the budget
        is skipped in favour of later, smaller ones.  Returns the bytes
        actually moved.
        """
        cluster = self.cluster
        if cluster.is_down(budget.src) or cluster.is_down(budget.dst):
            return 0
        src_rdms = cluster.node(budget.src).rdms
        moved = 0
        for entry in list(src_rdms.entries.values()):
            if moved >= budget.nbytes:
                break
            if moved + entry.nbytes > budget.nbytes:
                continue
            ok = yield from self.migrate_entry(entry, budget.src, budget.dst)
            if ok:
                moved += entry.nbytes
        return moved

    def migrate_entry(self, entry, src, dst):
        """Generator: move one hosted entry ``src`` → ``dst``.

        Returns ``True`` when the entry now lives on ``dst`` and the
        owner's map says so; ``False`` when the migration was skipped
        or aborted (in which case the map still points at ``src`` and
        the ``dst`` reservation, if any, has been released).
        """
        cluster = self.cluster
        owner_id = entry.owner_node_id
        if dst == owner_id:
            return False
        if cluster.is_down(owner_id) or cluster.is_down(src) or cluster.is_down(dst):
            return False
        owner = cluster.node(owner_id)
        record = owner.ldms.remote_record(entry.key)
        if record is None or src not in record.replica_nodes:
            return False
        if dst in record.replica_nodes:
            return False
        owner_map = owner.ldms.map_of(entry.key[0])
        try:
            owner_map.stage_replica_move(entry.key, src, dst)
        except ValueError:
            return False  # concurrent move or repair got there first
        self.metrics.migrations_started += 1
        tracer = self.env.tracer
        key = list(entry.key)
        if tracer.enabled:
            # The reservation window opens with the staged move: from
            # here, every exit path below emits a matching remap/abort.
            tracer.instant(
                "migrate.reserve", key=key, src=src, dst=dst,
                nbytes=entry.nbytes,
            )
        try:
            reply = yield from owner.rdmc.control_call(
                dst, {"op": "reserve", "key": entry.key, "nbytes": entry.nbytes}
            )
            if not reply.get("ok"):
                owner_map.abort_replica_move(entry.key)
                self.metrics.migrations_aborted += 1
                if tracer.enabled:
                    tracer.instant(
                        "migrate.abort", key=key, reason="reserve-refused"
                    )
                return False
            copy_span = (
                tracer.begin(
                    "migrate.copy", key=key, src=src, dst=dst,
                    nbytes=entry.nbytes,
                )
                if tracer.enabled else None
            )
            try:
                yield from cluster.fabric.transfer(src, dst, entry.nbytes)
            finally:
                tracer.end(copy_span)
        except (NetworkError, ControlTimeout, RemoteAccessError) as error:
            owner_map.abort_replica_move(entry.key)
            self.metrics.migrations_aborted += 1
            if tracer.enabled:
                tracer.instant(
                    "migrate.abort", key=key, reason=type(error).__name__
                )
            # Roll the destination reservation back; if the destination
            # crashed, its crash already dropped the reservation.
            yield from owner.rdmc.best_effort_free(dst, entry.key)
            return False
        committed = owner_map.commit_replica_move(entry.key, now=self.env.now)
        if committed is None:
            # The record changed under the migration (entry removed or
            # replica repaired away): treat as an abort.
            self.metrics.migrations_aborted += 1
            if tracer.enabled:
                tracer.instant("migrate.abort", key=key, reason="record-changed")
            yield from owner.rdmc.best_effort_free(dst, entry.key)
            return False
        if tracer.enabled:
            tracer.instant("migrate.remap", key=key, src=src, dst=dst)
        yield from owner.rdmc.best_effort_free(src, entry.key)
        self.metrics.migrations_completed += 1
        self.metrics.moved_bytes += entry.nbytes
        return True
