"""The telemetry plane: node managers report to their group leader.

Section IV-D of the paper has node managers tracking "the amount of
free and used memory" and group leaders deciding "where donated memory
lives".  Here every control epoch each live group member builds a
:class:`NodeReport` from its local counters and ships it to the group
leader as a control-plane message over the simulated fabric (costing
real wire time; a report that hits a down link is simply lost and
counted).  Cluster-wide sampling reuses the existing
:class:`~repro.metrics.utilization.ClusterUtilizationMonitor` so the
balancer's utilization numbers are the same ones every other experiment
reports.
"""

from repro.metrics.utilization import ClusterUtilizationMonitor
from repro.net.errors import NetworkError

#: Wire size of one serialized NodeReport (a handful of counters).
REPORT_BYTES = 256

#: Allocation grain the telemetry plane quotes allocatable bytes at —
#: the compressed-page granularity migrations actually move.  Reported
#: per epoch so harvest policies plan against what a fragmented
#: receive pool can really place, not its raw free counter.
HARVEST_GRAIN = 64 * 1024


class NodeReport:
    """One node manager's state, as published to its group leader."""

    __slots__ = (
        "node_id",
        "time",
        "pool_used",
        "pool_capacity",
        "receive_used",
        "receive_capacity",
        "receive_free",
        "allocatable_bytes",
        "hosted_bytes",
        "remote_put_rate",
        "fault_in_rate",
        "shared_pool_misses",
        "balloon_reclaimable",
    )

    def __init__(self, node_id, time, pool_used, pool_capacity, receive_used,
                 receive_capacity, receive_free, hosted_bytes, remote_put_rate,
                 fault_in_rate, shared_pool_misses, balloon_reclaimable,
                 allocatable_bytes=None):
        self.node_id = node_id
        self.time = time
        self.pool_used = pool_used
        self.pool_capacity = pool_capacity
        self.receive_used = receive_used
        self.receive_capacity = receive_capacity
        self.receive_free = receive_free
        #: Receive-pool bytes actually satisfiable at the migration
        #: grain (:data:`HARVEST_GRAIN`); ``None`` when the reporter
        #: predates the field.  Under fragmentation this falls below
        #: ``receive_free`` — the gap raw-counter harvesting plans into.
        self.allocatable_bytes = allocatable_bytes
        self.hosted_bytes = hosted_bytes
        #: Remote puts per second since the previous report (the node's
        #: outbound pressure on the cluster tier).
        self.remote_put_rate = remote_put_rate
        #: Remote gets per second since the previous report (fault-ins
        #: served from disaggregated memory).
        self.fault_in_rate = fault_in_rate
        self.shared_pool_misses = shared_pool_misses
        #: Bytes the node's servers could still balloon back (donations
        #: not yet reclaimed) — the leader's view of balloon state.
        self.balloon_reclaimable = balloon_reclaimable

    @property
    def pool_utilization(self):
        if self.pool_capacity == 0:
            return 0.0
        return self.pool_used / self.pool_capacity

    @property
    def receive_utilization(self):
        if self.receive_capacity == 0:
            return 0.0
        return self.receive_used / self.receive_capacity

    def __repr__(self):
        return "<NodeReport {!r} recv={:.0%} rate={:.3g}/s>".format(
            self.node_id, self.receive_utilization, self.remote_put_rate
        )


class TelemetryPlane:
    """Collects NodeReports into group leaders, over the fabric."""

    def __init__(self, cluster, metrics, report_bytes=REPORT_BYTES,
                 monitor_period=0.05):
        self.cluster = cluster
        self.env = cluster.env
        self.metrics = metrics
        self.report_bytes = report_bytes
        #: Reused cluster-wide sampler; the controller calls
        #: :meth:`sample` once per epoch so its series line up with the
        #: balancer's CoV series.
        self.monitor = ClusterUtilizationMonitor(cluster, period=monitor_period)
        #: node_id -> (time, remote_puts, remote_gets) at the last report.
        self._cursors = {}

    def sample(self):
        """One cluster-wide utilization sample (monitor reuse)."""
        return self.monitor.sample_now()

    def build_report(self, node_id):
        """Snapshot one node's counters into a :class:`NodeReport`.

        Rates are computed against this plane's own cursors, so
        telemetry never perturbs the eviction manager's rate tracking
        (which owns the node-side cursor).
        """
        node = self.cluster.node(node_id)
        now = self.env.now
        last_time, last_puts, last_gets = self._cursors.get(node_id, (0.0, 0, 0))
        elapsed = now - last_time
        put_rate = (node.remote_puts - last_puts) / elapsed if elapsed > 0 else 0.0
        get_rate = (node.remote_gets - last_gets) / elapsed if elapsed > 0 else 0.0
        self._cursors[node_id] = (now, node.remote_puts, node.remote_gets)
        return NodeReport(
            node_id=node_id,
            time=now,
            pool_used=node.shared_pool.used_bytes,
            pool_capacity=node.shared_pool.capacity_bytes,
            receive_used=node.receive_pool.used_bytes,
            receive_capacity=node.receive_pool.capacity_bytes,
            receive_free=node.receive_pool.free_bytes,
            allocatable_bytes=node.receive_pool.allocatable_bytes(
                HARVEST_GRAIN
            ),
            hosted_bytes=node.rdms.hosted_bytes,
            remote_put_rate=put_rate,
            fault_in_rate=get_rate,
            shared_pool_misses=node.shared_pool_misses,
            balloon_reclaimable=sum(s.donated_bytes for s in node.servers),
        )

    def collect(self, group):
        """Generator: one telemetry round — every live member reports.

        The leader's own report is local (no wire cost); every other
        member pays one control message leader-ward.  Reports that hit
        a dead path are lost (the leader plans without them).  Returns
        the reports that arrived, in member order.
        """
        leader = group.leader
        reports = []
        for member in group.members:
            if self.cluster.is_down(member):
                continue
            report = self.build_report(member)
            if member != leader:
                try:
                    yield from self.cluster.fabric.control_send(
                        member, leader, self.report_bytes
                    )
                except NetworkError:
                    self.metrics.reports_lost += 1
                    continue
            self.metrics.reports_received += 1
            reports.append(report)
        return reports
