"""Cluster-level memory-balancing control plane (paper §IV-D/IV-E).

The passive pieces of the paper's control plane — groups, leader
election, eviction and ballooning — already exist in :mod:`repro.core`;
this package closes the loop:

* :mod:`repro.balance.telemetry` — each node manager periodically
  publishes a :class:`NodeReport` (pool usage, receive-pool pressure,
  fault-in rate, balloon state) to its group leader over the simulated
  fabric, reusing :class:`~repro.metrics.utilization.ClusterUtilizationMonitor`
  sampling;
* :mod:`repro.balance.policies` — the leader-side planner: pluggable
  policies (threshold/watermark, proportional share, greedy bin-packing
  harvester) fold a round of reports into a :class:`RebalancePlan` of
  page-migration budgets and slab-donation orders;
* :mod:`repro.balance.migration` — the :class:`MigrationEngine`
  executes plans as simulated events: reserve at the destination, copy
  the page over RDMA, atomically remap the owner's disaggregated memory
  map (dual-entry protocol), invalidate the old location, and abort
  cleanly when a node crashes mid-migration;
* :mod:`repro.balance.controller` — the :class:`BalanceController`
  drives one telemetry → plan → execute round per control epoch and
  records :class:`~repro.metrics.balance.BalanceMetrics`, including the
  cluster imbalance coefficient-of-variation time series.
"""

from repro.balance.controller import BalanceController
from repro.balance.migration import MigrationEngine
from repro.balance.policies import (
    BALANCE_POLICIES,
    GreedyHarvestPolicy,
    MoveBudget,
    ProportionalSharePolicy,
    RebalancePlan,
    RebalancePolicy,
    SlabOrder,
    StaticPolicy,
    ThresholdPolicy,
    make_balance_policy,
)
from repro.balance.telemetry import REPORT_BYTES, NodeReport, TelemetryPlane
from repro.metrics.balance import BalanceMetrics, coefficient_of_variation

__all__ = [
    "BALANCE_POLICIES",
    "BalanceController",
    "BalanceMetrics",
    "GreedyHarvestPolicy",
    "MigrationEngine",
    "MoveBudget",
    "NodeReport",
    "ProportionalSharePolicy",
    "REPORT_BYTES",
    "RebalancePlan",
    "RebalancePolicy",
    "SlabOrder",
    "StaticPolicy",
    "TelemetryPlane",
    "ThresholdPolicy",
    "coefficient_of_variation",
    "make_balance_policy",
]
