"""The control loop: telemetry → plan → execute, once per epoch.

One :class:`BalanceController` serves a whole cluster: every control
epoch it takes a cluster-wide utilization sample, then runs one
telemetry/plan/execute round per group (re-electing a leader first if
the group's leader died — the §IV-C handshake timeout would get there
eventually, but the balancer cannot plan leaderless).  Per-epoch it
records the cluster imbalance CoV into its
:class:`~repro.metrics.balance.BalanceMetrics`, which is the series the
``memory_balancing`` experiment reports.
"""

from repro.balance.migration import MigrationEngine
from repro.balance.policies import RebalancePolicy, make_balance_policy
from repro.balance.telemetry import TelemetryPlane
from repro.metrics.balance import BalanceMetrics, coefficient_of_variation


class BalanceController:
    """Drives the memory-balancing control plane of one cluster."""

    def __init__(self, cluster, policy="threshold", epoch=0.1, metrics=None,
                 **policy_options):
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        self.cluster = cluster
        self.env = cluster.env
        self.epoch = epoch
        if isinstance(policy, RebalancePolicy):
            if policy_options:
                raise ValueError("policy options need a policy name")
            self.policy = policy
        else:
            self.policy = make_balance_policy(policy, **policy_options)
        self.metrics = metrics or BalanceMetrics()
        self.telemetry = TelemetryPlane(cluster, self.metrics)
        self.engine = MigrationEngine(cluster, self.metrics)
        self._process = None

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Record the starting imbalance and spawn the epoch loop."""
        self.metrics.record_cov(self.env.now, self.cluster_cov())
        self._process = self.env.process(
            self._loop(), name="balance:{}".format(self.policy.name)
        )
        return self._process

    def _loop(self):
        while True:
            yield self.env.timeout(self.epoch)
            yield from self.run_epoch()

    # -- one epoch -----------------------------------------------------------

    def cluster_cov(self):
        """Imbalance now: CoV of per-node receive-pool utilization.

        Nodes with zero receive capacity (fully shrunk or never grown)
        carry no signal about placement skew and are excluded.
        """
        utilizations = [
            node.receive_pool.used_bytes / node.receive_pool.capacity_bytes
            for node in self.cluster.nodes()
            if node.receive_pool.capacity_bytes > 0
        ]
        return coefficient_of_variation(utilizations)

    def run_epoch(self):
        """Generator: one telemetry → plan → execute round per group."""
        self.metrics.epochs += 1
        self.telemetry.sample()
        groups = self.cluster.groups.groups
        for group_id in sorted(groups):
            group = groups[group_id]
            leader = group.leader
            if leader is None or self.cluster.is_down(leader):
                leader = self.cluster.election.elect(group)
            if leader is None:
                continue  # the whole group is down
            reports = yield from self.telemetry.collect(group)
            if len(reports) < 2:
                continue  # nobody to balance against
            started = self.env.now
            plan = self.policy.plan(group_id, reports)
            if plan.is_empty():
                self.metrics.empty_plans += 1
                continue
            self.metrics.plans_built += 1
            self.metrics.planned_bytes += plan.planned_bytes()
            yield from self.engine.execute(plan)
            self.metrics.plan_latency.record(self.env.now - started)
        self.metrics.record_cov(self.env.now, self.cluster_cov())
