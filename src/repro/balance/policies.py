"""Leader-side rebalance planning (paper §IV-D/IV-E).

Each control epoch the group leader folds the round's
:class:`~repro.balance.telemetry.NodeReport` list into a
:class:`RebalancePlan`: *page-migration budgets* ("move up to N bytes
of hosted entries from the hot server to the cold one") plus *slab
orders* (donation grow/shrink/transfer of whole receive-pool slabs).
Planning is pure data-in/data-out — no simulation time, no randomness —
so a plan is a deterministic function of the reports, which is what
keeps whole experiment sweeps byte-identical across worker counts.

Three pluggable policies, the classic trio of balancing literature:

* :class:`ThresholdPolicy` — high/low watermarks on receive-pool
  utilization; drains nodes above the high mark into nodes below the
  low mark until both sit inside the band;
* :class:`ProportionalSharePolicy` — moves every node toward the group
  mean utilization (within a tolerance band);
* :class:`GreedyHarvestPolicy` — bin-packing harvester: the biggest
  excess is repeatedly packed into the candidate with the most
  headroom (best-fit decreasing).

:class:`StaticPolicy` plans nothing and is the experiment's baseline.
"""

from repro.core.election import node_sort_key


class MoveBudget:
    """Move up to ``nbytes`` of hosted entries from ``src`` to ``dst``."""

    __slots__ = ("src", "dst", "nbytes")

    def __init__(self, src, dst, nbytes):
        if src == dst:
            raise ValueError("src and dst must differ")
        if nbytes <= 0:
            raise ValueError("a move budget needs positive bytes")
        self.src = src
        self.dst = dst
        self.nbytes = int(nbytes)

    def __repr__(self):
        return "MoveBudget({!r} -> {!r}, {}B)".format(self.src, self.dst, self.nbytes)

    def __eq__(self, other):
        return (
            isinstance(other, MoveBudget)
            and (self.src, self.dst, self.nbytes)
            == (other.src, other.dst, other.nbytes)
        )


class SlabOrder:
    """Donation change: transfer, shrink or grow whole slabs.

    ``src`` and ``dst`` set: transfer ownership of ``slabs`` idle slabs
    from ``src``'s receive pool to ``dst``'s.  Only ``src``: shrink
    (the node reclaims its donation).  Only ``dst``: grow (the node
    donates more).
    """

    __slots__ = ("src", "dst", "slabs")

    def __init__(self, src=None, dst=None, slabs=1):
        if src is None and dst is None:
            raise ValueError("a slab order needs a src or a dst")
        if src is not None and src == dst:
            raise ValueError("src and dst must differ")
        if slabs <= 0:
            raise ValueError("slabs must be positive")
        self.src = src
        self.dst = dst
        self.slabs = slabs

    def __repr__(self):
        return "SlabOrder(src={!r}, dst={!r}, slabs={})".format(
            self.src, self.dst, self.slabs
        )


class RebalancePlan:
    """One epoch's decisions for one group."""

    __slots__ = ("group_id", "migrations", "slab_orders")

    def __init__(self, group_id, migrations=(), slab_orders=()):
        self.group_id = group_id
        self.migrations = tuple(migrations)
        self.slab_orders = tuple(slab_orders)

    def is_empty(self):
        return not self.migrations and not self.slab_orders

    def planned_bytes(self):
        return sum(move.nbytes for move in self.migrations)

    def __repr__(self):
        return "<RebalancePlan g{} moves={} slabs={}>".format(
            self.group_id, len(self.migrations), len(self.slab_orders)
        )


def _report_key(report):
    """Deterministic secondary ordering for equal-utilization nodes."""
    return node_sort_key(report.node_id)


def _match(donors, receivers, min_move_bytes):
    """Two-pointer matching of donor excess against receiver deficit.

    ``donors``/``receivers`` are ``[node_id, bytes]`` lists, already
    ordered; both are consumed front to back.  Fragments smaller than
    ``min_move_bytes`` are dropped (not worth a migration round-trip).
    """
    moves = []
    di = ri = 0
    donors = [list(pair) for pair in donors]
    receivers = [list(pair) for pair in receivers]
    while di < len(donors) and ri < len(receivers):
        donor_id, excess = donors[di]
        receiver_id, deficit = receivers[ri]
        amount = int(min(excess, deficit))
        if amount >= min_move_bytes:
            moves.append(MoveBudget(donor_id, receiver_id, amount))
        donors[di][1] = excess - amount
        receivers[ri][1] = deficit - amount
        if donors[di][1] < min_move_bytes:
            di += 1
        if receivers[ri][1] < min_move_bytes:
            ri += 1
    return moves


class RebalancePolicy:
    """Base planner: migration strategy + shared donation logic."""

    name = "abstract"

    def __init__(self, min_move_bytes=64 * 1024, pressure_rate=None,
                 respect_allocatable=True):
        #: Smallest byte budget worth a migration (plan granularity).
        self.min_move_bytes = min_move_bytes
        #: Remote-put rate above which a node is considered pressured
        #: and sheds one receive-pool slab per epoch (donation
        #: transfer); ``None`` disables donation orders.
        self.pressure_rate = pressure_rate
        #: Clamp each receiver's absorbable bytes to what its pool can
        #: actually place at the migration grain (see
        #: :data:`~repro.balance.telemetry.HARVEST_GRAIN`).  ``False``
        #: plans against the raw free counter — the historical
        #: behaviour, which over-plans into fragmented receivers and
        #: erodes harvest yield through reserve-refused aborts.
        self.respect_allocatable = respect_allocatable

    def plan(self, group_id, reports):
        """Fold one telemetry round into a :class:`RebalancePlan`."""
        reports = [r for r in reports if r.receive_capacity > 0]
        return RebalancePlan(
            group_id,
            migrations=self._migrations(reports) if len(reports) >= 2 else (),
            slab_orders=self._slab_orders(reports) if len(reports) >= 2 else (),
        )

    def _migrations(self, reports):
        raise NotImplementedError

    def _absorbable(self, report, deficit):
        """A receiver's deficit, clamped to what it can actually place."""
        if not self.respect_allocatable:
            return deficit
        allocatable = getattr(report, "allocatable_bytes", None)
        if allocatable is None:
            return deficit
        return min(deficit, allocatable)

    def _slab_orders(self, reports):
        """Pressured nodes shed one slab each to the coldest calm node.

        This is §IV-F seen from the leader: a node whose own workload
        hammers the cluster tier should not also be hosting donations,
        so its idle receive-pool slabs move to whoever has the most
        room.  Without a calm target the slab is shrunk outright.
        """
        if self.pressure_rate is None:
            return ()
        pressured = [r for r in reports if r.remote_put_rate > self.pressure_rate]
        calm = sorted(
            (r for r in reports if r.remote_put_rate <= self.pressure_rate),
            key=lambda r: (r.receive_utilization, _report_key(r)),
        )
        orders = []
        for report in sorted(pressured, key=_report_key):
            if report.receive_capacity < 1:
                continue
            if calm:
                orders.append(SlabOrder(src=report.node_id, dst=calm[0].node_id))
            else:
                orders.append(SlabOrder(src=report.node_id))
        return tuple(orders)


class StaticPolicy(RebalancePolicy):
    """The do-nothing baseline: telemetry runs, nothing ever moves."""

    name = "static"

    def _migrations(self, reports):
        return ()

    def _slab_orders(self, reports):
        return ()


class ThresholdPolicy(RebalancePolicy):
    """High/low watermarks on receive-pool utilization.

    Nodes above ``high`` donate their overflow (down to ``high``);
    nodes below ``low`` absorb it, but only up to the ``high`` mark so
    a receiver can never be pushed straight into donor territory.
    """

    name = "threshold"

    def __init__(self, high=0.75, low=0.4, **kwargs):
        if not 0.0 <= low < high <= 1.0:
            raise ValueError("need 0 <= low < high <= 1")
        super().__init__(**kwargs)
        self.high = high
        self.low = low

    def _migrations(self, reports):
        donors = sorted(
            (r for r in reports if r.receive_utilization > self.high),
            key=lambda r: (-r.receive_utilization, _report_key(r)),
        )
        receivers = sorted(
            (r for r in reports if r.receive_utilization < self.low),
            key=lambda r: (r.receive_utilization, _report_key(r)),
        )
        return _match(
            [
                [r.node_id, r.receive_used - self.high * r.receive_capacity]
                for r in donors
            ],
            [
                [
                    r.node_id,
                    self._absorbable(
                        r, self.high * r.receive_capacity - r.receive_used
                    ),
                ]
                for r in receivers
            ],
            self.min_move_bytes,
        )


class ProportionalSharePolicy(RebalancePolicy):
    """Every node converges to the group's mean utilization."""

    name = "proportional"

    def __init__(self, tolerance=0.05, **kwargs):
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        super().__init__(**kwargs)
        self.tolerance = tolerance

    def _migrations(self, reports):
        mean = sum(r.receive_utilization for r in reports) / len(reports)
        donors = sorted(
            (r for r in reports if r.receive_utilization > mean + self.tolerance),
            key=lambda r: (-r.receive_utilization, _report_key(r)),
        )
        receivers = sorted(
            (r for r in reports if r.receive_utilization < mean - self.tolerance),
            key=lambda r: (r.receive_utilization, _report_key(r)),
        )
        return _match(
            [[r.node_id, r.receive_used - mean * r.receive_capacity] for r in donors],
            [
                [
                    r.node_id,
                    self._absorbable(
                        r, mean * r.receive_capacity - r.receive_used
                    ),
                ]
                for r in receivers
            ],
            self.min_move_bytes,
        )


class GreedyHarvestPolicy(RebalancePolicy):
    """Best-fit-decreasing harvester over excess above the group mean.

    The largest surplus is repeatedly packed into the node with the
    most headroom — the classic greedy bin-packing heuristic, which
    tends to drain the single hottest server fastest.
    """

    name = "greedy"

    def __init__(self, slack=0.02, **kwargs):
        if slack < 0:
            raise ValueError("slack must be non-negative")
        super().__init__(**kwargs)
        #: Utilization band around the mean treated as balanced.
        self.slack = slack

    def _migrations(self, reports):
        mean = sum(r.receive_utilization for r in reports) / len(reports)
        excess = {
            r.node_id: r.receive_used - (mean + self.slack) * r.receive_capacity
            for r in reports
        }
        headroom = {
            r.node_id: self._absorbable(
                r, (mean - self.slack) * r.receive_capacity - r.receive_used
            )
            for r in reports
        }
        order = {r.node_id: _report_key(r) for r in reports}
        moves = []
        while True:
            donor = max(
                excess,
                key=lambda node: (excess[node], order[node]),
            )
            if excess[donor] < self.min_move_bytes:
                break
            receiver = max(
                (node for node in headroom if node != donor),
                key=lambda node: (headroom[node], order[node]),
                default=None,
            )
            if receiver is None or headroom[receiver] < self.min_move_bytes:
                break
            amount = int(min(excess[donor], headroom[receiver]))
            moves.append(MoveBudget(donor, receiver, amount))
            excess[donor] -= amount
            headroom[receiver] -= amount
        return moves


BALANCE_POLICIES = ("static", "threshold", "proportional", "greedy")


def make_balance_policy(name, **options):
    """Factory keyed by policy name (the experiment's sweep axis)."""
    if name == "static":
        return StaticPolicy(**options)
    if name == "threshold":
        return ThresholdPolicy(**options)
    if name == "proportional":
        return ProportionalSharePolicy(**options)
    if name == "greedy":
        return GreedyHarvestPolicy(**options)
    raise ValueError(
        "unknown balance policy {!r}; expected one of {}".format(
            name, ", ".join(BALANCE_POLICIES)
        )
    )
