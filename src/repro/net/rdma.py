"""RDMA verbs model: memory regions, queue pairs, one- and two-sided ops.

Follows the access model the paper lays out in Section IV-G:

* **registration** — memory used by RDMA must be registered (pinned and
  mapped) first, which costs real time; slab registration/deregistration
  in the core system goes through this;
* **one-sided READ/WRITE** — data-plane operations that complete without
  the remote CPU; used for the disaggregated-memory data path;
* **two-sided SEND/RECV** — message-passing with receiver involvement;
  used for the control plane (placement, leases, leader election);
* **reliable connection (RC)** — in-order, at-most-once delivery; a
  failed peer moves the queue pair to the ERROR state and every further
  operation fails fast.
"""

from itertools import count

from repro.net.errors import ConnectionFailed, NetworkError
from repro.sim import Store

_region_keys = count(1)


class RemoteAccessError(NetworkError):
    """A one-sided operation referenced an invalid/revoked memory region."""


class MemoryRegion:
    """A registered, remotely accessible memory region."""

    def __init__(self, owner_node_id, size):
        self.rkey = next(_region_keys)
        self.owner_node_id = owner_node_id
        self.size = size
        self.valid = True

    def __repr__(self):
        return "<MR rkey={} node={!r} size={} {}>".format(
            self.rkey,
            self.owner_node_id,
            self.size,
            "valid" if self.valid else "revoked",
        )


class Message:
    """A two-sided message delivered to the remote receive queue."""

    __slots__ = ("src", "dst", "body", "nbytes")

    def __init__(self, src, dst, body, nbytes):
        self.src = src
        self.dst = dst
        self.body = body
        self.nbytes = nbytes


class QueuePair:
    """A reliable-connected queue pair between two nodes."""

    STATE_READY = "RTS"
    STATE_ERROR = "ERROR"
    STATE_CLOSED = "CLOSED"

    def __init__(self, local_device, remote_device):
        self.local = local_device
        self.remote = remote_device
        self.state = self.STATE_READY
        self.ops_completed = 0

    def __repr__(self):
        return "<QP {!r}->{!r} {}>".format(
            self.local.node_id, self.remote.node_id, self.state
        )

    def _require_ready(self):
        if self.state != self.STATE_READY:
            raise ConnectionFailed(
                self.local.node_id, self.remote.node_id, "QP in " + self.state
            )

    def _fail(self):
        self.state = self.STATE_ERROR

    def _check_region(self, region, nbytes):
        if not region.valid:
            raise RemoteAccessError("region {!r} revoked".format(region))
        if region.owner_node_id != self.remote.node_id:
            raise RemoteAccessError(
                "region {!r} not owned by {!r}".format(region, self.remote.node_id)
            )
        if nbytes > region.size:
            raise RemoteAccessError(
                "{} bytes exceeds region size {}".format(nbytes, region.size)
            )

    # -- one-sided (data plane) ---------------------------------------------

    def write(self, region, nbytes):
        """Generator: one-sided RDMA WRITE of ``nbytes`` into ``region``."""
        self._require_ready()
        self._check_region(region, nbytes)
        spec = self.local.fabric.spec
        yield self.local.env.timeout(spec.per_message_overhead)
        try:
            yield from self.local.fabric.transfer(
                self.local.node_id, self.remote.node_id, nbytes
            )
        except NetworkError:
            self._fail()
            raise
        self.ops_completed += 1

    def read(self, region, nbytes):
        """Generator: one-sided RDMA READ of ``nbytes`` from ``region``."""
        self._require_ready()
        self._check_region(region, nbytes)
        spec = self.local.fabric.spec
        yield self.local.env.timeout(spec.per_message_overhead)
        try:
            # Data flows remote -> local; request propagation is folded
            # into the base verb latency.
            yield from self.local.fabric.transfer(
                self.remote.node_id, self.local.node_id, nbytes
            )
        except NetworkError:
            self._fail()
            raise
        self.ops_completed += 1

    # -- two-sided (control plane) -------------------------------------------

    def send(self, body, nbytes):
        """Generator: SEND ``body`` (accounted as ``nbytes``) to the peer.

        The message lands in the peer device's receive queue
        (:meth:`RdmaDevice.recv`).
        """
        self._require_ready()
        spec = self.local.fabric.spec
        yield self.local.env.timeout(spec.per_message_overhead)
        try:
            yield from self.local.fabric.transfer(
                self.local.node_id,
                self.remote.node_id,
                nbytes,
                base_latency=spec.rdma_latency + spec.send_recv_extra,
                op="control",
            )
        except NetworkError:
            self._fail()
            raise
        message = Message(self.local.node_id, self.remote.node_id, body, nbytes)
        yield self.remote.inbox.put(message)
        self.ops_completed += 1

    def close(self):
        """Tear the connection down locally."""
        self.state = self.STATE_CLOSED


class RdmaDevice:
    """The per-node RDMA endpoint: NIC + regions + connections + inbox."""

    #: Connection establishment: three-way CM handshake over the wire.
    HANDSHAKE_MESSAGES = 3
    HANDSHAKE_MESSAGE_BYTES = 256

    def __init__(self, env, fabric, node_id):
        self.env = env
        self.fabric = fabric
        self.node_id = node_id
        self.nic = fabric.add_node(node_id)
        self.regions = {}
        self.inbox = Store(env, name="inbox:{}".format(node_id))
        self.registered_bytes = 0
        self._qps = {}
        self._peer_qps = []  # QPs other devices hold toward us

    # -- memory registration --------------------------------------------------

    def register_memory(self, size):
        """Generator: register ``size`` bytes; returns a :class:`MemoryRegion`."""
        if size <= 0:
            raise ValueError("region size must be positive")
        yield self.env.timeout(self.fabric.spec.registration_time)
        region = MemoryRegion(self.node_id, size)
        self.regions[region.rkey] = region
        self.registered_bytes += size
        return region

    def deregister_memory(self, region):
        """Revoke a region; in-flight one-sided ops against it will fail."""
        if region.rkey in self.regions:
            del self.regions[region.rkey]
            self.registered_bytes -= region.size
        region.valid = False

    # -- connection management -------------------------------------------------

    def connect(self, remote_device, retry=None, rng=None):
        """Generator: establish (or reuse) an RC queue pair to a peer.

        ``retry`` (a :class:`~repro.net.retry.RetryPolicy`) re-runs the
        whole CM handshake with exponential backoff before giving up
        with :class:`~repro.net.errors.ConnectionFailed`.
        """
        cached = self._qps.get(remote_device.node_id)
        if cached is not None and cached.state == QueuePair.STATE_READY:
            return cached
        if retry is None:
            yield from self._handshake(remote_device)
        else:
            from repro.net.retry import retrying

            yield from retrying(
                self.env,
                retry,
                lambda: self._handshake(remote_device),
                retry_on=(ConnectionFailed,),
                rng=rng,
            )
        qp = QueuePair(self, remote_device)
        self._qps[remote_device.node_id] = qp
        remote_device._peer_qps.append(qp)
        return qp

    def _handshake(self, remote_device):
        """Generator: one three-way CM handshake attempt over the wire."""
        spec = self.fabric.spec
        for _ in range(self.HANDSHAKE_MESSAGES):
            try:
                yield from self.fabric.transfer(
                    self.node_id,
                    remote_device.node_id,
                    self.HANDSHAKE_MESSAGE_BYTES,
                    base_latency=spec.rdma_latency + spec.send_recv_extra,
                )
            except NetworkError as error:
                raise ConnectionFailed(
                    self.node_id, remote_device.node_id, str(error)
                )

    def recv(self):
        """Event: the next message delivered to this device."""
        return self.inbox.get()

    def crash(self):
        """Drop all state, mirroring a node crash.

        Local QPs error, QPs that peers hold toward this node error (they
        would observe retry exhaustion), all regions are revoked, and
        undelivered inbox messages die with the node's memory.
        """
        self.inbox.items.clear()
        for qp in self._qps.values():
            qp._fail()
        self._qps.clear()
        for qp in self._peer_qps:
            qp._fail()
        self._peer_qps = []
        for region in list(self.regions.values()):
            self.deregister_memory(region)
