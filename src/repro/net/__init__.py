"""RDMA cluster fabric.

Models the interconnect of the paper's testbed (56 Gbps FDR InfiniBand)
and the RDMA access model of Section IV-G:

* :mod:`repro.net.fabric` — nodes with full-duplex NICs, per-direction
  bandwidth contention, configurable base latency, and failure state;
* :mod:`repro.net.rdma` — memory regions, reliable-connected queue
  pairs, one-sided READ/WRITE (data plane) and two-sided SEND/RECV
  (control plane), connection management;
* :mod:`repro.net.rpc` — an Accelio-style message RPC layer with
  bounded message size and window-based batching (used by DAHI);
* :mod:`repro.net.failures` — failure injection (node crash, link
  partition) driving the fault-tolerance experiments.
"""

from repro.net.errors import (
    ConnectionFailed,
    LinkDown,
    NetworkError,
    OpTimeout,
    RemoteNodeDown,
)
from repro.net.fabric import Fabric, Nic
from repro.net.failures import FailureInjector
from repro.net.rdma import MemoryRegion, QueuePair, RdmaDevice
from repro.net.retry import RetryPolicy, RetryStats, call_with_timeout, retrying
from repro.net.rpc import RpcEndpoint

__all__ = [
    "ConnectionFailed",
    "Fabric",
    "FailureInjector",
    "LinkDown",
    "MemoryRegion",
    "NetworkError",
    "Nic",
    "OpTimeout",
    "QueuePair",
    "RdmaDevice",
    "RemoteNodeDown",
    "RetryPolicy",
    "RetryStats",
    "RpcEndpoint",
    "call_with_timeout",
    "retrying",
]
