"""Failure injection for fault-tolerance experiments (paper Section IV-D).

The injector drives the fabric's failure state and, optionally,
node-crash/-recovery callback registries so higher layers (node
manager, leader election, replicated tiers) observe crashes the way
they would in production: through timeouts and failed operations,
never through shared Python state.

The injector itself is deliberately *randomness-free*: it applies
events it is told about, immediately or at scheduled times.  Random
fault schedules are generated in :mod:`repro.faults.schedule` from
named :class:`~repro.sim.rng.RngStreams`, so every schedule is
reproducible from the master seed alone — nothing in the failure path
ever touches the process-global RNG.
"""


class FailureInjector:
    """Schedules node crashes, recoveries, link and latency faults."""

    def __init__(self, env, fabric):
        self.env = env
        self.fabric = fabric
        self._crash_listeners = []
        self._recover_listeners = []
        self.log = []  # (time, kind, detail)

    def on_crash(self, callback):
        """Register ``callback(node_id)`` invoked when a node crashes."""
        self._crash_listeners.append(callback)

    def on_recover(self, callback):
        """Register ``callback(node_id)`` invoked when a node recovers."""
        self._recover_listeners.append(callback)

    # -- immediate ---------------------------------------------------------

    def crash_node(self, node_id):
        """Crash ``node_id`` now."""
        self.fabric.set_node_down(node_id, down=True)
        self.log.append((self.env.now, "crash", node_id))
        for callback in self._crash_listeners:
            callback(node_id)

    def recover_node(self, node_id):
        """Recover ``node_id`` now."""
        self.fabric.set_node_down(node_id, down=False)
        self.log.append((self.env.now, "recover", node_id))
        for callback in self._recover_listeners:
            callback(node_id)

    def partition_link(self, a, b):
        """Cut the path between two nodes now (both directions)."""
        self.fabric.set_link_down(a, b, down=True)
        self.log.append((self.env.now, "partition", (a, b)))

    def heal_link(self, a, b):
        """Restore the path between two nodes now."""
        self.fabric.set_link_down(a, b, down=False)
        self.log.append((self.env.now, "heal", (a, b)))

    def degrade_node(self, node_id, factor):
        """Slow every path touching ``node_id`` by ``factor`` now."""
        self.fabric.set_degraded(node_id, factor)
        self.log.append((self.env.now, "degrade", (node_id, factor)))

    def restore_node(self, node_id):
        """Restore full link speed for ``node_id`` now."""
        self.fabric.set_degraded(node_id, 1.0)
        self.log.append((self.env.now, "restore", node_id))

    # -- scheduled ---------------------------------------------------------

    def schedule_crash(self, node_id, at):
        """Crash ``node_id`` at absolute simulated time ``at``."""

        def plan():
            yield self.env.timeout(max(0.0, at - self.env.now))
            self.crash_node(node_id)

        return self.env.process(plan(), name="crash:{}".format(node_id))

    def schedule_recovery(self, node_id, at):
        """Recover ``node_id`` at absolute simulated time ``at``."""

        def plan():
            yield self.env.timeout(max(0.0, at - self.env.now))
            self.recover_node(node_id)

        return self.env.process(plan(), name="recover:{}".format(node_id))

    def schedule_partition(self, a, b, at, heal_at=None):
        """Partition ``a``/``b`` at ``at``; optionally heal at ``heal_at``."""

        def plan():
            yield self.env.timeout(max(0.0, at - self.env.now))
            self.partition_link(a, b)
            if heal_at is not None:
                yield self.env.timeout(max(0.0, heal_at - self.env.now))
                self.heal_link(a, b)

        return self.env.process(plan(), name="partition:{}-{}".format(a, b))

    def schedule_degrade(self, node_id, factor, at, restore_at=None):
        """Degrade ``node_id`` at ``at``; optionally restore later."""

        def plan():
            yield self.env.timeout(max(0.0, at - self.env.now))
            self.degrade_node(node_id, factor)
            if restore_at is not None:
                yield self.env.timeout(max(0.0, restore_at - self.env.now))
                self.restore_node(node_id)

        return self.env.process(plan(), name="degrade:{}".format(node_id))
