"""Accelio-style RPC with bounded messages and window batching.

DAHI (paper Section IV-H) is built on Accelio, an RPC library over RDMA
with a default message size of 8 KB and a maximum of 1 MB.  Moving a
large RDD partition therefore costs one per-message overhead *per
message* — unless messages are batched: a window of ``d`` messages is
posted as one doorbell, paying the fixed cost once per window.

:class:`RpcEndpoint` models exactly that trade, and is also reused by
FastSwap's window-based batch swap-out/in paths.
"""

from repro.hw.latency import KiB, MiB


class RpcEndpoint:
    """A message-based RPC endpoint bound to one RDMA device."""

    DEFAULT_MESSAGE_BYTES = 8 * KiB
    MAX_MESSAGE_BYTES = 1 * MiB

    def __init__(self, device, message_bytes=None, window=1, retry=None):
        if message_bytes is None:
            message_bytes = self.DEFAULT_MESSAGE_BYTES
        if not 0 < message_bytes <= self.MAX_MESSAGE_BYTES:
            raise ValueError(
                "message_bytes must be in (0, {}]".format(self.MAX_MESSAGE_BYTES)
            )
        if window < 1:
            raise ValueError("window must be >= 1")
        self.device = device
        self.env = device.env
        self.message_bytes = message_bytes
        self.window = window
        #: Optional :class:`~repro.net.retry.RetryPolicy` applied per
        #: window: a transiently failed window is retried with backoff
        #: instead of failing the whole transfer.
        self.retry = retry
        self.messages_sent = 0
        self.windows_sent = 0
        self.window_retries = 0

    def message_count(self, total_bytes):
        """Number of RPC messages needed for ``total_bytes``."""
        if total_bytes <= 0:
            return 0
        return -(-total_bytes // self.message_bytes)  # ceil div

    def transfer(self, qp, total_bytes, direction="write"):
        """Generator: move ``total_bytes`` over ``qp`` in batched windows.

        ``direction`` is ``"write"`` (push to peer) or ``"read"`` (pull).
        Each window of up to ``self.window`` messages pays one fixed
        per-message overhead and one wire transfer of the combined
        payload; this is the batching optimization of Section IV-H.
        """
        if direction not in ("write", "read"):
            raise ValueError("direction must be 'write' or 'read'")
        messages = self.message_count(total_bytes)
        if messages == 0:
            return 0
        spec = self.device.fabric.spec
        remaining = total_bytes
        sent_windows = 0
        while remaining > 0:
            window_messages = min(self.window, self.message_count(remaining))
            window_bytes = min(remaining, window_messages * self.message_bytes)
            yield self.env.timeout(spec.per_message_overhead)
            if direction == "write":
                src, dst = qp.local.node_id, qp.remote.node_id
            else:
                src, dst = qp.remote.node_id, qp.local.node_id
            if self.retry is None:
                yield from self.device.fabric.transfer(src, dst, window_bytes)
            else:
                from repro.net.retry import RetryStats, retrying

                stats = RetryStats()
                yield from retrying(
                    self.env,
                    self.retry,
                    lambda: self.device.fabric.transfer(src, dst, window_bytes),
                    stats=stats,
                )
                self.window_retries += stats.retries
            remaining -= window_bytes
            self.messages_sent += window_messages
            sent_windows += 1
        self.windows_sent += sent_windows
        return messages

    def transfer_time_estimate(self, total_bytes):
        """Closed-form uncontended time for :meth:`transfer`."""
        spec = self.device.fabric.spec
        messages = self.message_count(total_bytes)
        if messages == 0:
            return 0.0
        windows = -(-messages // self.window)
        return windows * (
            spec.per_message_overhead + spec.rdma_latency
        ) + total_bytes / spec.bandwidth
