"""Retry, timeout and exponential-backoff semantics for network ops.

The paper's resilience story (Section IV-D) assumes that transient
failures — a flapped link, a rebooting peer, a congested fabric — are
absorbed below the data path: operations are retried with exponential
backoff, and only *exhausted* retries surface as failures the failover
policies must handle.  This module provides that layer for every
simulated network op:

* :class:`RetryPolicy` — attempts, base delay, multiplier, cap and
  optional jitter (jitter draws from an explicitly passed RNG stream,
  never the process-global RNG, so schedules stay seed-reproducible);
* :func:`retrying` — drive an attempt factory under a policy, sleeping
  the backoff delay between attempts in *simulated* time;
* :func:`call_with_timeout` — run a generator as a child process with
  a watchdog; a late operation is interrupted and surfaces as
  :class:`~repro.net.errors.OpTimeout`.
"""

from dataclasses import dataclass

from repro.net.errors import NetworkError, OpTimeout


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff: ``base_delay * multiplier**(attempt-1)``.

    ``jitter`` is the +/- fraction applied to each delay when an RNG
    stream is supplied (deterministic backoff otherwise).
    """

    max_attempts: int = 4
    base_delay: float = 20e-6
    multiplier: float = 2.0
    max_delay: float = 10e-3
    jitter: float = 0.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt, rng=None):
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        delay = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class RetryStats:
    """Counters one retrying call site accumulates across operations."""

    __slots__ = ("attempts", "retries", "exhausted")

    def __init__(self):
        self.attempts = 0
        self.retries = 0
        self.exhausted = 0

    def snapshot(self):
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "exhausted": self.exhausted,
        }


def retrying(env, policy, attempt, retry_on=(NetworkError,), rng=None,
             stats=None):
    """Generator: run ``attempt()`` under ``policy``; returns its value.

    ``attempt`` is a zero-argument callable returning a *fresh*
    generator per call (each retry re-runs the whole operation, e.g.
    re-establishing a queue pair that moved to ERROR).  Exceptions not
    in ``retry_on`` propagate immediately; the last retryable error is
    re-raised once attempts are exhausted.
    """
    error = None
    for number in range(1, policy.max_attempts + 1):
        if stats is not None:
            stats.attempts += 1
        try:
            result = yield from attempt()
        except retry_on as caught:
            error = caught
            if number == policy.max_attempts:
                break
            if stats is not None:
                stats.retries += 1
            if env.tracer.enabled:
                env.tracer.instant(
                    "net.retry",
                    attempt=number,
                    max_attempts=policy.max_attempts,
                    error=type(caught).__name__,
                )
            backoff = policy.delay(number, rng)
            if backoff > 0:
                yield env.timeout(backoff)
        else:
            return result
    if stats is not None:
        stats.exhausted += 1
    raise error


def call_with_timeout(env, generator, timeout, what=""):
    """Generator: run ``generator`` with a watchdog of ``timeout``.

    The operation runs as a child process; if the watchdog fires first
    the child is interrupted (its ``finally`` blocks release held
    resources) and :class:`~repro.net.errors.OpTimeout` is raised.
    Failures of the operation itself propagate unchanged.
    """
    if timeout <= 0:
        raise ValueError("timeout must be positive")
    child = env.process(generator, name=what or "with-timeout")
    watchdog = env.timeout(timeout)
    yield env.any_of([child, watchdog])
    if not child.triggered:
        child.interrupt("timeout after {}s".format(timeout))
        if env.tracer.enabled:
            env.tracer.instant("net.timeout", timeout_s=timeout, what=what)
        raise OpTimeout(timeout, what)
    if not child.ok:
        raise child.value
    return child.value
