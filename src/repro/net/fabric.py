"""The cluster interconnect.

A :class:`Fabric` connects named nodes through a non-blocking switch
(full bisection bandwidth, as in the paper's 32-machine InfiniBand
testbed): the contended resources are each node's NIC transmit and
receive sides, not the core.  Transfers charge

    base latency + payload / min(tx bandwidth, rx bandwidth)

while holding the sender's TX lane and the receiver's RX lane, so
concurrent flows to or from one node queue behind each other.

Failure state lives here: nodes and directed links can be marked down,
and every transfer checks that state both when it starts and when it
would complete (a mid-flight crash loses the transfer).
"""

from repro.net.errors import LinkDown, RemoteNodeDown
from repro.hw.latency import NetworkSpec
from repro.sim import Resource


class Nic:
    """A node's network interface: independent TX and RX lanes."""

    def __init__(self, env, node_id, spec):
        self.env = env
        self.node_id = node_id
        self.spec = spec
        self.tx = Resource(env, capacity=1, name="nic-tx:{}".format(node_id))
        self.rx = Resource(env, capacity=1, name="nic-rx:{}".format(node_id))
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0


class Fabric:
    """A switched cluster network with failure injection hooks."""

    def __init__(self, env, spec=None, core_concurrency=0):
        """``core_concurrency`` > 0 caps concurrent transfers through
        the switch core — an oversubscribed fabric.  0 models full
        bisection bandwidth (the paper testbed's non-blocking fabric).
        """
        self.env = env
        self.spec = spec or NetworkSpec()
        self._nics = {}
        self._down_nodes = set()
        self._down_links = set()  # directed (src, dst) pairs
        self._degraded = {}  # node_id -> latency/bandwidth multiplier
        self._core = (
            Resource(env, capacity=core_concurrency, name="fabric-core")
            if core_concurrency > 0 else None
        )
        self.total_bytes = 0
        self.total_messages = 0

    # -- topology ------------------------------------------------------

    def add_node(self, node_id):
        """Attach a node; returns its :class:`Nic`."""
        if node_id in self._nics:
            raise ValueError("node {!r} already attached".format(node_id))
        nic = Nic(self.env, node_id, self.spec)
        self._nics[node_id] = nic
        return nic

    def nic(self, node_id):
        """The :class:`Nic` of an attached node."""
        return self._nics[node_id]

    @property
    def node_ids(self):
        return list(self._nics)

    # -- failure state ---------------------------------------------------

    def set_node_down(self, node_id, down=True):
        """Mark a node crashed (or recovered with ``down=False``)."""
        if node_id not in self._nics:
            raise KeyError(node_id)
        if down:
            self._down_nodes.add(node_id)
        else:
            self._down_nodes.discard(node_id)

    def set_link_down(self, src, dst, down=True, symmetric=True):
        """Partition the directed path ``src -> dst`` (both ways by default)."""
        pairs = [(src, dst), (dst, src)] if symmetric else [(src, dst)]
        for pair in pairs:
            if down:
                self._down_links.add(pair)
            else:
                self._down_links.discard(pair)

    def set_degraded(self, node_id, factor=1.0):
        """Degrade every path touching ``node_id`` by ``factor``.

        Models a flaky NIC/cable renegotiating at a lower rate (the
        paper's RDMA-link degradation scenario): transfers to or from
        the node take ``factor`` times as long.  ``factor <= 1``
        restores full speed.
        """
        if node_id not in self._nics:
            raise KeyError(node_id)
        if factor <= 1.0:
            self._degraded.pop(node_id, None)
        else:
            self._degraded[node_id] = float(factor)

    def degrade_factor(self, src, dst):
        """The latency multiplier currently applied to ``src -> dst``."""
        return max(
            1.0,
            self._degraded.get(src, 1.0),
            self._degraded.get(dst, 1.0),
        )

    def is_node_down(self, node_id):
        return node_id in self._down_nodes

    def is_reachable(self, src, dst):
        """True if a transfer ``src -> dst`` could start right now."""
        return (
            src not in self._down_nodes
            and dst not in self._down_nodes
            and (src, dst) not in self._down_links
        )

    def _check_path(self, src, dst):
        if dst in self._down_nodes:
            raise RemoteNodeDown(dst)
        if src in self._down_nodes:
            raise RemoteNodeDown(src)
        if (src, dst) in self._down_links:
            raise LinkDown(src, dst)

    # -- data movement -----------------------------------------------------

    def transfer_time(self, nbytes, base_latency=None):
        """Uncontended wire time for ``nbytes``."""
        if base_latency is None:
            base_latency = self.spec.rdma_latency
        return base_latency + nbytes / self.spec.bandwidth

    def control_send(self, src, dst, nbytes):
        """Generator: one control-plane message from ``src`` to ``dst``.

        Control traffic (heartbeats, telemetry reports, balance plans)
        travels two-sided SEND/RECV, so it pays the send/recv surcharge
        on top of the base RDMA latency.  Same failure semantics as
        :meth:`transfer`.
        """
        yield from self.transfer(
            src,
            dst,
            nbytes,
            base_latency=self.spec.rdma_latency + self.spec.send_recv_extra,
            op="control",
        )

    def transfer(self, src, dst, nbytes, base_latency=None, op="data"):
        """Generator: move ``nbytes`` from ``src`` to ``dst``.

        Holds the sender's TX lane and receiver's RX lane for the wire
        time; raises a :class:`~repro.net.errors.NetworkError` subclass
        if the path is (or goes) down.  ``op`` labels the traffic class
        ("data" or "control") for tracing only.
        """
        tracer = self.env.tracer
        if not tracer.enabled:
            yield from self._transfer(src, dst, nbytes, base_latency)
            return
        began = self.env.now
        span = tracer.begin("net.send", src=src, dst=dst, nbytes=nbytes, op=op)
        try:
            yield from self._transfer(src, dst, nbytes, base_latency)
        except Exception as error:
            tracer.end(span, ok=False, error=type(error).__name__)
            raise
        tracer.end(span, ok=True)
        tracer.latency("net", "send." + op, self.env.now - began)

    def fanout(self, src, dsts, nbytes_each, base_latency=None, op="data"):
        """Generator: one fan-out round from ``src`` to every ``dsts``.

        The SWARM-style single-round write primitive: the sender posts
        one doorbell that replicates ``nbytes_each`` to every
        destination in parallel, holding its TX lane for *one* wire
        time (the slowest path) instead of once per copy.  All paths
        are checked at start and at completion — a destination that is
        (or goes) down fails the whole round; nothing is delivered
        partially.  Emits a single ``net.send`` span carrying the
        ``dsts`` list and a ``fanout`` count.
        """
        dsts = list(dsts)
        if not dsts:
            return
        tracer = self.env.tracer
        if not tracer.enabled:
            yield from self._fanout(src, dsts, nbytes_each, base_latency)
            return
        began = self.env.now
        span = tracer.begin(
            "net.send",
            src=src,
            dsts=dsts,
            nbytes=nbytes_each * len(dsts),
            op=op,
            fanout=len(dsts),
        )
        try:
            yield from self._fanout(src, dsts, nbytes_each, base_latency)
        except Exception as error:
            tracer.end(span, ok=False, error=type(error).__name__)
            raise
        tracer.end(span, ok=True)
        tracer.latency("net", "send." + op, self.env.now - began)

    def _fanout(self, src, dsts, nbytes_each, base_latency=None):
        for dst in dsts:
            self._check_path(src, dst)
        src_nic = self._nics[src]
        # Acquire the TX lane plus every destination RX lane in one
        # canonical global order (same rule as ``_transfer``): no cycle
        # of holders can form whatever else is in flight.
        lanes = sorted(
            [("{}:tx".format(src), src_nic.tx)]
            + [
                ("{}:rx".format(dst), self._nics[dst].rx)
                for dst in dsts
            ],
            key=lambda pair: pair[0],
        )
        granted = []
        try:
            for _key, lane in lanes:
                request = lane.request()
                yield request
                granted.append((lane, request))
            if self._core is not None:
                core_request = self._core.request()
                yield core_request
                granted.append((self._core, core_request))
            yield self.env.timeout(max(
                self.transfer_time(nbytes_each, base_latency)
                * self.degrade_factor(src, dst)
                for dst in dsts
            ))
            # Any endpoint that died mid-flight loses the whole round.
            for dst in dsts:
                self._check_path(src, dst)
            src_nic.bytes_sent += nbytes_each * len(dsts)
            src_nic.messages_sent += 1
            for dst in dsts:
                self._nics[dst].bytes_received += nbytes_each
            self.total_bytes += nbytes_each * len(dsts)
            self.total_messages += 1
        finally:
            for lane, request in granted:
                lane.release(request)

    def _transfer(self, src, dst, nbytes, base_latency=None):
        self._check_path(src, dst)
        src_nic = self._nics[src]
        dst_nic = self._nics[dst]
        # Acquire lanes in a canonical global order so that concurrent
        # transfers can never hold-and-wait in a cycle (deadlock).
        lanes = sorted(
            [("{}:tx".format(src), src_nic.tx), ("{}:rx".format(dst), dst_nic.rx)],
            key=lambda pair: pair[0],
        )
        granted = []
        try:
            for _key, lane in lanes:
                request = lane.request()
                yield request
                granted.append((lane, request))
            if self._core is not None:
                # The core is acquired only after both lanes, and its
                # holders never wait on lanes, so no cycle can form.
                core_request = self._core.request()
                yield core_request
                granted.append((self._core, core_request))
            yield self.env.timeout(
                self.transfer_time(nbytes, base_latency)
                * self.degrade_factor(src, dst)
            )
            # A node or link that died mid-flight loses the transfer.
            self._check_path(src, dst)
            src_nic.bytes_sent += nbytes
            src_nic.messages_sent += 1
            dst_nic.bytes_received += nbytes
            self.total_bytes += nbytes
            self.total_messages += 1
        finally:
            for lane, request in granted:
                lane.release(request)
