"""Network failure exceptions.

These are raised *inside* simulated processes, mirroring how a verbs
completion with error status surfaces to the caller.
"""


class NetworkError(Exception):
    """Base class for simulated network failures."""


class RemoteNodeDown(NetworkError):
    """The remote node crashed before or during the operation."""

    def __init__(self, node_id):
        super().__init__("remote node {!r} is down".format(node_id))
        self.node_id = node_id


class LinkDown(NetworkError):
    """The path between two nodes is partitioned."""

    def __init__(self, src, dst):
        super().__init__("link {!r} -> {!r} is down".format(src, dst))
        self.src = src
        self.dst = dst


class OpTimeout(NetworkError):
    """An operation exceeded its deadline (watchdog timeout)."""

    def __init__(self, timeout, what=""):
        message = "operation timed out after {}s".format(timeout)
        if what:
            message = "{}: {}".format(what, message)
        super().__init__(message)
        self.timeout = timeout


class ConnectionFailed(NetworkError):
    """Queue-pair establishment failed (peer down or unreachable)."""

    def __init__(self, src, dst, reason=""):
        message = "connection {!r} -> {!r} failed".format(src, dst)
        if reason:
            message += ": " + reason
        super().__init__(message)
        self.src = src
        self.dst = dst
