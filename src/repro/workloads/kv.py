"""Key-value serving workloads: Memcached ETC, Redis, VoltDB.

Figure 8 and Figure 9 measure serving *throughput* under memory
pressure, so these workloads are closed-loop clients: each operation
touches the pages backing the requested key, then the next operation
issues immediately.  Throughput is recorded in fixed windows to produce
the Figure 9 timeline.

Profiles follow the published characterizations: Facebook's ETC pool is
~95% GETs with strong Zipf skew; Redis is modelled as a read-mostly
cache; VoltDB as an OLTP store with a heavy write mix and multi-page
transactions.
"""

from dataclasses import dataclass, field

from repro.mem.compression import CompressibilityProfile
from repro.workloads.patterns import ZipfSampler
from repro.workloads.spec import deprecated_method


@dataclass
class KvWorkloadSpec:
    """Shape of one key-value serving workload.

    Implements the unified WorkloadSpec protocol
    (:mod:`repro.workloads.spec`) at both granularities: the
    operation-level ``iter_operations``/``ops_batch`` surface serving
    drivers need, and the page-level ``iter_accesses``/``as_batch``
    expansion (each operation becomes ``pages_per_key`` consecutive
    page touches) every paging consumer understands.
    """

    #: Open-loop hook of the WorkloadSpec protocol: the closed-loop
    #: Table 1 clients issue the next operation immediately.
    #: :mod:`repro.serve` wraps specs with a real arrival process.
    arrival_process = None

    name: str
    #: Keys in the store; each key's value occupies ``pages_per_key`` pages.
    keys: int = 4096
    pages_per_key: int = 1
    #: Fraction of operations that are reads.
    read_fraction: float = 0.95
    #: Zipf skew of key popularity.
    zipf_alpha: float = 1.0
    #: CPU time to serve one operation beyond memory access.
    compute_per_op: float = 6.0e-6
    #: Similar-popularity keys per contiguous address block (slab
    #: allocators co-locate same-class values; 1 = fully scattered).
    locality_block: int = 1
    compressibility: CompressibilityProfile = field(
        default_factory=lambda: CompressibilityProfile("kv", 2.0)
    )

    @property
    def pages(self):
        return self.keys * self.pages_per_key

    def _sampler(self, rng):
        # Clamp the slab-locality block to the key space: a store so
        # small that one slab covers it is simply one block (identical
        # to the old silently degenerate layout, but explicit — the
        # sampler now rejects locality_block > n).
        return ZipfSampler(self.keys, self.zipf_alpha, rng,
                           locality_block=min(self.locality_block, self.keys))

    def iter_operations(self, rng):
        """Infinite stream of ``(first_page_id, page_count, is_write)``."""
        zipf = self._sampler(rng)
        while True:
            key = zipf.sample()
            yield key * self.pages_per_key, self.pages_per_key, (
                rng.random() >= self.read_fraction
            )

    def ops_batch(self, rng, count):
        """``count`` operations as a list, drawn in
        :meth:`iter_operations` order (key draw, then write coin, per
        operation).

        One-shot: every call builds a fresh sampler, so chunked callers
        should keep the generator from :meth:`iter_operations` instead.
        """
        zipf = self._sampler(rng)
        sample = zipf.sample
        random = rng.random
        pages_per_key = self.pages_per_key
        read_fraction = self.read_fraction
        return [
            (sample() * pages_per_key, pages_per_key,
             random() >= read_fraction)
            for _ in range(count)
        ]

    def iter_accesses(self, rng):
        """Infinite page-granular stream: each operation expanded to
        its ``pages_per_key`` consecutive page touches (the write flag
        covers the whole burst), drawing from ``rng`` in exactly
        :meth:`iter_operations` order."""
        for first_page, count, is_write in self.iter_operations(rng):
            for offset in range(count):
                yield first_page + offset, is_write

    def as_batch(self, rng, length):
        """``length`` operations, page-expanded, as an
        :class:`~repro.workloads.batch.AccessBatch` (RNG-order
        identical to :meth:`iter_accesses`)."""
        from repro.workloads.batch import AccessBatch

        addresses = []
        writes = []
        for first_page, count, is_write in self.ops_batch(rng, length):
            for offset in range(count):
                addresses.append(first_page + offset)
                writes.append(is_write)
        return AccessBatch(addresses, writes)

    def with_overrides(self, **kwargs):
        from dataclasses import replace

        return replace(self, **kwargs)

    # Pre-unification surface (one release of deprecation shims).
    operations = deprecated_method("operations", "iter_operations")
    operations_batch = deprecated_method("operations_batch", "ops_batch")


def _profile(name, mean, sigma=0.4, incompressible=0.1):
    return CompressibilityProfile(
        name, mean_ratio=mean, sigma=sigma, incompressible_fraction=incompressible
    )


#: The three serving workloads of Table 1.
KV_WORKLOADS = {
    "memcached": KvWorkloadSpec(
        name="memcached",
        read_fraction=0.95,  # the ETC pool mix
        zipf_alpha=1.05,
        compute_per_op=5.0e-6,
        locality_block=8,  # slab pages hold same-class (co-hot) values
        compressibility=_profile("memcached", 2.2),
    ),
    "redis": KvWorkloadSpec(
        name="redis",
        read_fraction=0.9,
        zipf_alpha=1.0,
        compute_per_op=4.0e-6,
        compressibility=_profile("redis", 2.5),
    ),
    "voltdb": KvWorkloadSpec(
        name="voltdb",
        read_fraction=0.5,
        zipf_alpha=0.8,
        pages_per_key=2,  # row + index page per transaction
        compute_per_op=12.0e-6,
        compressibility=_profile("voltdb", 1.9),
    ),
}
