"""Table 1: the ten applications used in the paper's experiments.

The paper's Table 1 lists ten memory-intensive applications with
working sets of 25–30 GB and inputs of 12–20 GB per virtual server.
Our simulation scales both down by SCALE (default 1024x) while keeping
the working-set : input and working-set : resident-memory *ratios* —
the quantities every figure actually depends on.
"""

from dataclasses import dataclass

from repro.hw.latency import GiB, PAGE_SIZE
from repro.workloads.kv import KV_WORKLOADS
from repro.workloads.ml import ML_WORKLOADS

#: Linear downscale applied to the paper's data sizes.
SCALE = 1024


@dataclass(frozen=True)
class ApplicationSpec:
    """One row of Table 1."""

    name: str
    category: str  # "graph", "ml", "kv"
    framework: str
    #: The paper's (unscaled) sizes.
    working_set_bytes: int
    input_bytes: int
    #: The generator driving the simulation.
    workload_key: str
    workload_kind: str  # "ml" or "kv"

    @property
    def scaled_working_set_bytes(self):
        return self.working_set_bytes // SCALE

    @property
    def scaled_pages(self):
        return max(1, self.scaled_working_set_bytes // PAGE_SIZE)

    def workload(self):
        """The trace-generator spec, sized to the scaled working set."""
        if self.workload_kind == "ml":
            spec = ML_WORKLOADS[self.workload_key]
            return spec.with_overrides(pages=self.scaled_pages)
        spec = KV_WORKLOADS[self.workload_key]
        keys = max(1, self.scaled_pages // spec.pages_per_key)
        return spec.with_overrides(keys=keys)


def _gb(value):
    return int(value * GiB)


APPLICATIONS = {
    "pagerank": ApplicationSpec(
        "pagerank", "graph", "PowerGraph", _gb(28), _gb(18), "pagerank", "ml"
    ),
    "logistic_regression": ApplicationSpec(
        "logistic_regression", "ml", "Spark", _gb(26), _gb(14),
        "logistic_regression", "ml",
    ),
    "tunkrank": ApplicationSpec(
        "tunkrank", "graph", "PowerGraph", _gb(30), _gb(20), "tunkrank", "ml"
    ),
    "kmeans": ApplicationSpec(
        "kmeans", "ml", "Spark", _gb(25), _gb(12), "kmeans", "ml"
    ),
    "svm": ApplicationSpec(
        "svm", "ml", "Spark", _gb(27), _gb(15), "svm", "ml"
    ),
    "connected_components": ApplicationSpec(
        "connected_components", "graph", "Spark", _gb(26), _gb(16),
        "connected_components", "ml",
    ),
    "als": ApplicationSpec(
        "als", "ml", "Spark", _gb(29), _gb(19), "als", "ml"
    ),
    "memcached": ApplicationSpec(
        "memcached", "kv", "Memcached", _gb(25), _gb(12), "memcached", "kv"
    ),
    "redis": ApplicationSpec(
        "redis", "kv", "Redis", _gb(25), _gb(12), "redis", "kv"
    ),
    "voltdb": ApplicationSpec(
        "voltdb", "kv", "VoltDB", _gb(26), _gb(13), "voltdb", "kv"
    ),
}


def get_application(name):
    """Look an application up by name."""
    return APPLICATIONS[name]


def iter_applications():
    """All ten applications in a stable order."""
    return [APPLICATIONS[name] for name in sorted(APPLICATIONS)]
