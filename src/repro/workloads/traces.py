"""Recording and replaying page-reference traces (workload *inputs*).

Not to be confused with :mod:`repro.trace`, the execution-tracing
package: this module records the *page accesses a workload performs*
(simulation input, replayable in place of a synthetic generator),
while ``repro.trace`` records the *events a simulation run emits*
(simulation output, for Perfetto and the trace-invariant analyzer).

Synthetic generators are convenient, but real studies replay captured
traces.  This module provides a small, versioned on-disk format:

* :func:`record_trace` — materialize a workload spec into a
  :class:`RecordedTrace`;
* :func:`save_trace` / :func:`load_trace` — a line-oriented text format
  with a self-describing header;
* :class:`RecordedTrace` — duck-types the unified WorkloadSpec
  protocol (``name``, ``pages``, ``compute_per_access``,
  ``compressibility``, ``iter_accesses(rng)``; see
  :mod:`repro.workloads.spec`), so a loaded trace drops straight into
  :func:`repro.experiments.runner.run_paging_workload`.

Format (text, one record per line)::

    #repro-trace v1
    name=<workload>
    pages=<int>
    compute_per_access=<float>
    compress_mean=<float> compress_sigma=<float> compress_incompressible=<float>
    ---
    <page_id> <0|1>        # one access per line; 1 = write
"""

from repro.mem.compression import CompressibilityProfile
from repro.workloads.spec import deprecated_method
from repro.workloads.spec import iter_accesses as _iter_accesses

__all__ = ["RecordedTrace", "record_trace", "save_trace", "load_trace"]

FORMAT_MAGIC = "#repro-trace v1"


class RecordedTrace:
    """A materialized access trace, replayable like a workload spec."""

    def __init__(self, name, pages, accesses, compute_per_access=1e-6,
                 compressibility=None):
        self.name = name
        self.pages = pages
        self.accesses = list(accesses)
        self.compute_per_access = compute_per_access
        self.compressibility = compressibility or CompressibilityProfile(
            name, mean_ratio=2.0
        )
        for page_id, _write in self.accesses:
            if not 0 <= page_id < pages:
                raise ValueError(
                    "access to page {} outside [0, {})".format(page_id, pages)
                )

    def __len__(self):
        return len(self.accesses)

    #: Open-loop hook of the WorkloadSpec protocol (replay is
    #: closed-loop).
    arrival_process = None

    def iter_accesses(self, rng=None):
        """Replay the recorded accesses (``rng`` accepted for interface
        compatibility; replay is exact and ignores it)."""
        return iter(self.accesses)

    # Pre-unification surface (one release of deprecation shims).
    trace = deprecated_method("trace", "iter_accesses")

    def with_overrides(self, **kwargs):
        """Interface parity with the generator specs (only
        ``compute_per_access`` and ``name`` may be overridden)."""
        allowed = {"compute_per_access", "name"}
        unknown = set(kwargs) - allowed
        if unknown:
            raise ValueError("cannot override {} on a recorded trace".format(
                sorted(unknown)))
        clone = RecordedTrace(
            kwargs.get("name", self.name),
            self.pages,
            self.accesses,
            compute_per_access=kwargs.get(
                "compute_per_access", self.compute_per_access
            ),
            compressibility=self.compressibility,
        )
        return clone


def record_trace(spec, rng):
    """Materialize ``spec``'s reference stream into a RecordedTrace."""
    accesses = list(_iter_accesses(spec, rng))
    return RecordedTrace(
        spec.name,
        spec.pages,
        accesses,
        compute_per_access=spec.compute_per_access,
        compressibility=spec.compressibility,
    )


def save_trace(trace, path):
    """Write a trace to ``path`` in the v1 text format."""
    profile = trace.compressibility
    with open(path, "w") as handle:
        handle.write(FORMAT_MAGIC + "\n")
        handle.write("name={}\n".format(trace.name))
        handle.write("pages={}\n".format(trace.pages))
        handle.write("compute_per_access={!r}\n".format(
            trace.compute_per_access))
        handle.write(
            "compress_mean={!r} compress_sigma={!r} "
            "compress_incompressible={!r}\n".format(
                profile.mean_ratio, profile.sigma,
                profile.incompressible_fraction,
            )
        )
        handle.write("---\n")
        for page_id, write in trace.accesses:
            handle.write("{} {}\n".format(page_id, 1 if write else 0))


def load_trace(path):
    """Read a trace previously written by :func:`save_trace`."""
    with open(path) as handle:
        magic = handle.readline().rstrip("\n")
        if magic != FORMAT_MAGIC:
            raise ValueError("not a repro trace file: {!r}".format(magic))
        header = {}
        for line in handle:
            line = line.rstrip("\n")
            if line == "---":
                break
            for field in line.split():
                key, _eq, value = field.partition("=")
                header[key] = value
        else:
            raise ValueError("truncated trace: missing '---' separator")
        accesses = []
        for line in handle:
            page_field, write_field = line.split()
            accesses.append((int(page_field), write_field == "1"))
    profile = CompressibilityProfile(
        header["name"],
        mean_ratio=float(header["compress_mean"]),
        sigma=float(header["compress_sigma"]),
        incompressible_fraction=float(header["compress_incompressible"]),
    )
    return RecordedTrace(
        header["name"],
        int(header["pages"]),
        accesses,
        compute_per_access=float(header["compute_per_access"]),
        compressibility=profile,
    )
