"""The unified workload-spec protocol (streamed + batched + open-loop).

Historically the two workload families exposed *split* surfaces: ML
specs had ``trace(rng)`` / ``trace_batch(rng)``, KV specs had
``operations(rng)`` / ``operations_batch(rng, count)``.  Every consumer
(runners, the flat-path kernel, experiments, benchmarks) had to know
which family it was holding.  This module defines the one contract they
all implement now — the **WorkloadSpec protocol**:

``name`` / ``pages`` / ``compressibility``
    Identification and sizing, unchanged.

``iter_accesses(rng)``
    The streamed contract: an iterator of ``(page_id, is_write)``
    pairs.  Finite for trace-shaped workloads (ML sweeps, recorded
    traces), infinite for serving workloads (each operation expanded to
    its page burst).

``as_batch(rng)`` / ``as_batch(rng, length)``
    The batched contract: the same reference string as an
    :class:`~repro.workloads.batch.AccessBatch`, drawing from ``rng``
    in exactly the order ``iter_accesses`` does, so streamed and
    batched runs of one seed are bit-identical.  Specs whose stream is
    infinite require ``length`` (the number of *operations* to
    materialize).

``arrival_process``
    The open-loop hook, consumed by :mod:`repro.serve`: ``None`` for
    closed-loop specs (accesses issue back to back — every Table 1
    workload), or an arrival-process object (see
    :mod:`repro.serve.arrivals`) whose inter-arrival gaps fill
    ``AccessBatch.gaps``.  Closed-loop consumers ignore it.

Operation-granular specs (the KV family) additionally keep
``iter_operations(rng)`` / ``ops_batch(rng, count)`` yielding
``(first_page_id, page_count, is_write)`` tuples — serving drivers
need operation boundaries that a flat page stream erases.

The old method names remain as deprecation shims (one release): they
delegate to the new names and emit :class:`DeprecationWarning`.
"""

import warnings

__all__ = [
    "deprecated_method",
    "iter_accesses",
    "spec_batch",
]


def deprecated_method(old, new):
    """A method shim: ``old()`` warns and delegates to ``new()``.

    Used by the workload dataclasses to keep the pre-unification
    surface (``trace``/``trace_batch``/``operations``/
    ``operations_batch``) importable for one release.
    """

    def shim(self, *args, **kwargs):
        warnings.warn(
            "{}() is deprecated; use {}() (unified WorkloadSpec "
            "protocol, see repro.workloads.spec)".format(old, new),
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(self, new)(*args, **kwargs)

    shim.__name__ = old
    shim.__doc__ = "Deprecated alias for :meth:`{}`.".format(new)
    return shim


def iter_accesses(spec, rng):
    """``spec``'s streamed reference string, protocol-dispatched.

    Prefers the unified ``iter_accesses`` method; falls back to the
    legacy ``trace`` method (with a deprecation warning) so duck-typed
    third-party specs keep working for one release.
    """
    method = getattr(spec, "iter_accesses", None)
    if method is not None:
        return method(rng)
    legacy = getattr(spec, "trace", None)
    if legacy is not None:
        warnings.warn(
            "spec {!r} only implements the legacy trace() surface; "
            "rename it to iter_accesses()".format(
                getattr(spec, "name", spec)
            ),
            DeprecationWarning,
            stacklevel=2,
        )
        return legacy(rng)
    raise TypeError(
        "{!r} does not implement the WorkloadSpec protocol "
        "(no iter_accesses)".format(spec)
    )


def spec_batch(spec, rng, length=None):
    """``spec``'s reference string as an ``AccessBatch``.

    Prefers the spec's native ``as_batch`` (passing ``length`` only
    when given, so finite specs keep their one-argument signature);
    otherwise drains the streamed contract — always equivalent, just
    not faster to generate.
    """
    from repro.workloads.batch import AccessBatch

    method = getattr(spec, "as_batch", None)
    if method is None:
        legacy = getattr(spec, "trace_batch", None)
        if legacy is not None:
            warnings.warn(
                "spec {!r} only implements the legacy trace_batch() "
                "surface; rename it to as_batch()".format(
                    getattr(spec, "name", spec)
                ),
                DeprecationWarning,
                stacklevel=2,
            )
            return legacy(rng)
        return AccessBatch.from_pairs(iter_accesses(spec, rng))
    if length is None:
        return method(rng)
    return method(rng, length)
