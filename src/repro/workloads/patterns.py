"""Access-pattern primitives shared by the workload generators."""

import bisect
import itertools


class ZipfSampler:
    """Draws integers in ``[0, n)`` with Zipf(alpha) popularity.

    Rank-1 is the most popular item; a random permutation decouples
    popularity rank from address order so skew does not masquerade as
    spatial locality.
    """

    def __init__(self, n, alpha, rng, permute=True, locality_block=1):
        """``locality_block > 1`` permutes *blocks* of consecutive ranks
        instead of single ranks, so similarly popular items end up on
        adjacent addresses — the layout a slab allocator produces when
        values of one size class fill contiguous slab pages."""
        if n < 1:
            raise ValueError("n must be >= 1")
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        if locality_block < 1:
            raise ValueError("locality_block must be >= 1")
        if locality_block > n:
            # A block wider than the address space degenerates to a
            # single unshuffled block — silently indistinguishable from
            # permute=False, which is never what the caller meant.
            raise ValueError(
                "locality_block ({}) must not exceed n ({})".format(
                    locality_block, n
                )
            )
        self.n = n
        self.alpha = alpha
        weights = [1.0 / (rank ** alpha) for rank in range(1, n + 1)]
        total = 0.0
        self._cumulative = []
        for weight in weights:
            total += weight
            self._cumulative.append(total)
        self._total = total
        if permute:
            block = max(1, locality_block)
            block_count = -(-n // block)
            block_order = list(range(block_count))
            rng.shuffle(block_order)
            # Concatenate address blocks in shuffled order: consecutive
            # popularity ranks land on consecutive addresses within a
            # block, and the mapping stays a bijection even when the
            # last block is ragged.
            addresses = []
            for block_index in block_order:
                start = block_index * block
                addresses.extend(range(start, min(n, start + block)))
            self._mapping = addresses
        else:
            self._mapping = None
        self._rng = rng

    def sample(self):
        """One draw."""
        target = self._rng.random() * self._total
        rank = bisect.bisect_left(self._cumulative, target)
        rank = min(rank, self.n - 1)
        return self._mapping[rank] if self._mapping else rank

    def sample_many(self, k):
        """``k`` draws as a list — one table walk per draw, no generator
        frames.

        Consumes the RNG in exactly the order ``k`` :meth:`sample` calls
        would, so a batched caller and a one-at-a-time caller sharing a
        seed see the same stream.
        """
        random = self._rng.random
        search = bisect.bisect_left
        cumulative = self._cumulative
        total = self._total
        top = self.n - 1
        mapping = self._mapping
        if mapping is not None:
            return [
                mapping[min(search(cumulative, random() * total), top)]
                for _ in range(k)
            ]
        return [
            min(search(cumulative, random() * total), top) for _ in range(k)
        ]


def sequential_scan(n, start=0):
    """Yield ``n`` addresses in order, wrapping from ``start``."""
    for i in range(n):
        yield (start + i) % n


def strided_scan(n, stride):
    """Yield all ``n`` addresses with a fixed stride (coprime walks cover)."""
    address = 0
    for _ in range(n):
        yield address
        address = (address + stride) % n


def interleave(primary, secondary, ratio, rng):
    """Interleave two address streams: after each primary item, emit a
    secondary item with probability ``ratio``."""
    secondary = iter(secondary)
    for item in primary:
        yield item
        if ratio > 0 and rng.random() < ratio:
            nxt = next(secondary, None)
            if nxt is None:
                continue
            yield nxt


def take(iterable, count):
    """The first ``count`` items of ``iterable`` as a list."""
    return list(itertools.islice(iterable, count))
