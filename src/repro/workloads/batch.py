"""Pre-materialized access batches (the fast half of the two-speed engine).

The one-at-a-time workload contract — ``spec.iter_accesses(rng)``
yielding ``(page_id, is_write)`` pairs — costs a generator resume per
access, which is fine for driving the event engine but dominates
wall-clock once the flat-path kernel (:mod:`repro.sim.flatpath`) makes
the access itself cheap.  An :class:`AccessBatch` is the batched
contract: plain parallel arrays of addresses and write flags (plus
optional open-loop inter-arrival gaps) that generators fill up front
and the kernel indexes without any per-access Python frames.

Equivalence rule: a spec's ``as_batch(rng)`` must consume ``rng`` in
exactly the order ``iter_accesses(rng)`` does, so batched and streamed
runs of the same seed see the same reference string.  Specs without an
``as_batch`` are handled by :func:`materialize`, which simply drains
the stream — always equivalent, just not faster to generate.
"""

from dataclasses import dataclass, field

from repro.mem.compression import CompressibilityProfile
from repro.workloads.patterns import ZipfSampler
from repro.workloads.spec import deprecated_method, spec_batch

__all__ = ["AccessBatch", "ZipfBatchSpec", "flatten_requests", "materialize"]


@dataclass
class AccessBatch:
    """A page-reference string as parallel arrays.

    ``addresses[i]`` / ``writes[i]`` describe access ``i``; ``gaps``
    (when set) holds the open-loop think time *before* access ``i``.
    Closed-loop workloads leave ``gaps`` as ``None`` — the accesses
    issue back to back, which is what the flat-path kernel bulks.
    """

    addresses: list
    writes: list
    #: Optional per-access inter-arrival gap in seconds (open-loop).
    gaps: list = None

    def __post_init__(self):
        if len(self.addresses) != len(self.writes):
            raise ValueError(
                "addresses ({}) and writes ({}) must be parallel".format(
                    len(self.addresses), len(self.writes)
                )
            )
        if self.gaps is not None and len(self.gaps) != len(self.addresses):
            raise ValueError(
                "gaps ({}) must be parallel to addresses ({})".format(
                    len(self.gaps), len(self.addresses)
                )
            )

    def __len__(self):
        return len(self.addresses)

    @classmethod
    def from_pairs(cls, pairs):
        """Materialize a ``(page_id, is_write)`` stream into a batch."""
        addresses = []
        writes = []
        for page_id, is_write in pairs:
            addresses.append(page_id)
            writes.append(is_write)
        return cls(addresses, writes)

    def pairs(self):
        """The batch as the streamed contract (for cross-checks)."""
        return zip(self.addresses, self.writes)


def flatten_requests(operations):
    """Expand ``(first_page, page_count, is_write)`` operations into one
    :class:`AccessBatch` plus per-request bounds.

    Returns ``(batch, bounds)`` where request ``r`` covers accesses
    ``[bounds[r], bounds[r + 1])`` of the batch.  Serving drivers build
    the batch once per tenant class and hand
    :meth:`~repro.swap.base.VirtualMemory.run_batch` a ``(start, stop)``
    slice per request — no per-request array allocation on the hot
    path.  The page expansion (consecutive pages, the write flag
    covering the whole burst) matches
    :meth:`~repro.workloads.kv.KvWorkloadSpec.as_batch` exactly.
    """
    addresses = []
    writes = []
    bounds = [0]
    for first_page, count, is_write in operations:
        addresses.extend(range(first_page, first_page + count))
        writes.extend([is_write] * count)
        bounds.append(len(addresses))
    return AccessBatch(addresses, writes), bounds


def materialize(spec, rng, length=None):
    """``spec``'s reference string as an :class:`AccessBatch`.

    Protocol dispatch (see :mod:`repro.workloads.spec`): uses the
    spec's native ``as_batch`` when it has one; otherwise drains the
    streamed ``iter_accesses()`` — so duck-typed specs batch for free.
    ``length`` (operation count) is required by specs whose stream is
    infinite and ignored by the rest.
    """
    return spec_batch(spec, rng, length)


@dataclass
class ZipfBatchSpec:
    """A batch-first pure-Zipf paging workload.

    The simplest workload that exercises the batched contract end to
    end: addresses drawn with :meth:`ZipfSampler.sample_many`, writes
    drawn in bulk after them.  ``trace()`` replays the *same* batch, so
    streamed and batched runs are equivalent by construction.  Used by
    the flat-path benchmarks and the open-loop serving scenario's
    stepping stones; not part of the paper's Table 1.
    """

    #: Open-loop hook of the WorkloadSpec protocol (closed-loop here).
    arrival_process = None

    name: str = "zipf"
    pages: int = 4096
    #: Total accesses drawn.
    length: int = 16384
    zipf_alpha: float = 0.9
    write_fraction: float = 0.2
    compute_per_access: float = 1.0e-6
    compressibility: CompressibilityProfile = field(
        default_factory=lambda: CompressibilityProfile("zipf", 2.5)
    )

    def as_batch(self, rng):
        sampler = ZipfSampler(self.pages, self.zipf_alpha, rng)
        addresses = sampler.sample_many(self.length)
        random = rng.random
        write_fraction = self.write_fraction
        writes = [random() < write_fraction for _ in range(self.length)]
        return AccessBatch(addresses, writes)

    def iter_accesses(self, rng):
        return self.as_batch(rng).pairs()

    def with_overrides(self, **kwargs):
        from dataclasses import replace

        return replace(self, **kwargs)

    # Pre-unification surface (one release of deprecation shims).
    trace = deprecated_method("trace", "iter_accesses")
    trace_batch = deprecated_method("trace_batch", "as_batch")
