"""Workload generators: the ten applications of the paper's Table 1.

The paper evaluates ten memory-intensive applications (working sets
25–30 GB, inputs 12–20 GB per virtual server); we reproduce each as a
synthetic generator scaled down ~1000x, preserving what determines
paging behaviour: the access pattern (iterative scans + skewed random
access), the read/write mix, per-access compute, and page
compressibility.

The unified WorkloadSpec protocol
---------------------------------

Every spec in this package — ML trace generators, KV serving stores,
recorded traces, batch-first synthetics — implements **one** contract
(defined and fully documented in :mod:`repro.workloads.spec`):

* ``name`` / ``pages`` / ``compressibility`` — identity and sizing;
* ``iter_accesses(rng)`` — the streamed ``(page_id, is_write)``
  reference string (finite for trace-shaped specs, infinite for
  serving specs);
* ``as_batch(rng[, length])`` — the same string as an
  :class:`~repro.workloads.batch.AccessBatch`, RNG-order-identical to
  the stream (``length`` = operation count, required only by infinite
  specs);
* ``arrival_process`` — the open-loop hook consumed by
  :mod:`repro.serve`: ``None`` for closed-loop specs, else an arrival
  process whose inter-arrival gaps fill ``AccessBatch.gaps``.

Operation-granular specs (the KV family) additionally expose
``iter_operations(rng)`` / ``ops_batch(rng, count)`` yielding
``(first_page_id, page_count, is_write)``.  The pre-unification names
(``trace``/``trace_batch``/``operations``/``operations_batch``) remain
as deprecation shims for one release.

Modules
-------

* :mod:`repro.workloads.spec` — the WorkloadSpec protocol and its
  dispatch helpers;
* :mod:`repro.workloads.patterns` — reusable access-pattern primitives
  (scans, Zipf, strides);
* :mod:`repro.workloads.batch` — pre-materialized access batches, the
  input contract of the flat-path kernel (two-speed engine);
* :mod:`repro.workloads.ml` — iterative analytics workloads (PageRank,
  Logistic Regression, TunkRank, K-Means, SVM, Connected Components,
  ALS) as page-reference traces;
* :mod:`repro.workloads.kv` — key-value serving workloads (Memcached
  ETC, Redis, VoltDB) as closed-loop clients with throughput windows;
* :mod:`repro.workloads.catalog` — Table 1 itself: every application
  with its (scaled) working set, input size and profile.
"""

from repro.workloads.batch import AccessBatch, ZipfBatchSpec, materialize
from repro.workloads.catalog import (
    APPLICATIONS,
    ApplicationSpec,
    get_application,
    iter_applications,
)
from repro.workloads.kv import KvWorkloadSpec, KV_WORKLOADS
from repro.workloads.ml import MlWorkloadSpec, ML_WORKLOADS
from repro.workloads.patterns import ZipfSampler
from repro.workloads.spec import iter_accesses, spec_batch
from repro.workloads.traces import RecordedTrace, load_trace, record_trace, save_trace

__all__ = [
    "APPLICATIONS",
    "AccessBatch",
    "ApplicationSpec",
    "KV_WORKLOADS",
    "KvWorkloadSpec",
    "ML_WORKLOADS",
    "MlWorkloadSpec",
    "RecordedTrace",
    "ZipfBatchSpec",
    "ZipfSampler",
    "get_application",
    "iter_accesses",
    "iter_applications",
    "load_trace",
    "materialize",
    "record_trace",
    "save_trace",
    "spec_batch",
]
