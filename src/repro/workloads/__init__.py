"""Workload generators: the ten applications of the paper's Table 1.

The paper evaluates ten memory-intensive applications (working sets
25–30 GB, inputs 12–20 GB per virtual server); we reproduce each as a
synthetic generator scaled down ~1000x, preserving what determines
paging behaviour: the access pattern (iterative scans + skewed random
access), the read/write mix, per-access compute, and page
compressibility.

* :mod:`repro.workloads.patterns` — reusable access-pattern primitives
  (scans, Zipf, strides);
* :mod:`repro.workloads.batch` — pre-materialized access batches, the
  input contract of the flat-path kernel (two-speed engine);
* :mod:`repro.workloads.ml` — iterative analytics workloads (PageRank,
  Logistic Regression, TunkRank, K-Means, SVM, Connected Components,
  ALS) as page-reference traces;
* :mod:`repro.workloads.kv` — key-value serving workloads (Memcached
  ETC, Redis, VoltDB) as closed-loop clients with throughput windows;
* :mod:`repro.workloads.catalog` — Table 1 itself: every application
  with its (scaled) working set, input size and profile.
"""

from repro.workloads.batch import AccessBatch, ZipfBatchSpec, materialize
from repro.workloads.catalog import (
    APPLICATIONS,
    ApplicationSpec,
    get_application,
    iter_applications,
)
from repro.workloads.kv import KvWorkloadSpec, KV_WORKLOADS
from repro.workloads.ml import MlWorkloadSpec, ML_WORKLOADS
from repro.workloads.patterns import ZipfSampler
from repro.workloads.traces import RecordedTrace, load_trace, record_trace, save_trace

__all__ = [
    "APPLICATIONS",
    "AccessBatch",
    "ApplicationSpec",
    "KV_WORKLOADS",
    "KvWorkloadSpec",
    "ML_WORKLOADS",
    "MlWorkloadSpec",
    "RecordedTrace",
    "ZipfBatchSpec",
    "ZipfSampler",
    "get_application",
    "iter_applications",
    "load_trace",
    "materialize",
    "record_trace",
    "save_trace",
]
