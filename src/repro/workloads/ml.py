"""Iterative ML / graph analytics workloads as page-reference traces.

Each iteration of an iterative analytics job sweeps its working set
(model + partitioned input), with a skewed random component on top
(graph workloads chase hot vertices; K-Means re-reads centroids).  The
trace generator emits ``(page_id, is_write)`` pairs:

* a full sequential scan of the working set per iteration,
* interleaved Zipf accesses at ``random_ratio`` per scan step,
* writes at ``write_fraction`` (model updates / intermediate state).

The per-application parameters live in
:mod:`repro.workloads.catalog`; this module is the engine.
"""

from dataclasses import dataclass, field

from repro.mem.compression import CompressibilityProfile
from repro.workloads.patterns import ZipfSampler
from repro.workloads.spec import deprecated_method


@dataclass
class MlWorkloadSpec:
    """Shape of one iterative analytics workload.

    Implements the unified WorkloadSpec protocol
    (:mod:`repro.workloads.spec`): ``iter_accesses``/``as_batch`` plus
    the closed-loop ``arrival_process = None`` hook.
    """

    #: Open-loop hook of the WorkloadSpec protocol: ML sweeps are
    #: closed-loop (accesses issue back to back).
    arrival_process = None

    name: str
    #: Working-set size in pages (already scaled for simulation).
    pages: int = 4096
    #: Full working-set sweeps.
    iterations: int = 4
    #: Probability of an interleaved random access after each scan step.
    random_ratio: float = 0.3
    #: Zipf skew of the random component.
    zipf_alpha: float = 0.9
    #: Fraction of accesses that write.
    write_fraction: float = 0.3
    #: CPU time per access (the compute the job does between touches).
    compute_per_access: float = 8.0e-6
    #: How pages compress (drives Figures 3–5).
    compressibility: CompressibilityProfile = field(
        default_factory=lambda: CompressibilityProfile("default", 3.0)
    )

    @property
    def approximate_accesses(self):
        """Expected trace length."""
        return int(self.pages * self.iterations * (1.0 + self.random_ratio))

    def iter_accesses(self, rng):
        """Generate the ``(page_id, is_write)`` reference stream."""
        zipf = ZipfSampler(self.pages, self.zipf_alpha, rng)
        for _ in range(self.iterations):
            for page_id in range(self.pages):
                yield page_id, rng.random() < self.write_fraction
                if self.random_ratio and rng.random() < self.random_ratio:
                    yield zipf.sample(), rng.random() < self.write_fraction

    def as_batch(self, rng):
        """The same reference string as an
        :class:`~repro.workloads.batch.AccessBatch`.

        Draws from ``rng`` in exactly the interleaved order
        :meth:`iter_accesses` does (write flag, ratio coin, then the
        optional Zipf draw and its write flag), so a batched run
        replays the streamed run's string bit for bit.
        """
        from repro.workloads.batch import AccessBatch

        addresses = []
        writes = []
        add_address = addresses.append
        add_write = writes.append
        random = rng.random
        write_fraction = self.write_fraction
        ratio = self.random_ratio
        zipf = ZipfSampler(self.pages, self.zipf_alpha, rng)
        sample = zipf.sample
        for _ in range(self.iterations):
            for page_id in range(self.pages):
                add_address(page_id)
                add_write(random() < write_fraction)
                if ratio and random() < ratio:
                    add_address(sample())
                    add_write(random() < write_fraction)
        return AccessBatch(addresses, writes)

    def with_overrides(self, **kwargs):
        """A copy with fields replaced (for sweeps)."""
        from dataclasses import replace

        return replace(self, **kwargs)

    # Pre-unification surface (one release of deprecation shims).
    trace = deprecated_method("trace", "iter_accesses")
    trace_batch = deprecated_method("trace_batch", "as_batch")


def _profile(name, mean, sigma=0.35, incompressible=0.05):
    return CompressibilityProfile(
        name, mean_ratio=mean, sigma=sigma, incompressible_fraction=incompressible
    )


#: The seven iterative analytics workloads of Table 1 (the remaining
#: three — Memcached, Redis, VoltDB — are KV serving workloads and live
#: in :mod:`repro.workloads.kv`).  Compressibility means reflect that
#: sparse graph/matrix data compresses well and dense numeric vectors
#: less so.
ML_WORKLOADS = {
    "pagerank": MlWorkloadSpec(
        name="pagerank",
        random_ratio=0.5,
        zipf_alpha=1.05,
        write_fraction=0.25,
        compressibility=_profile("pagerank", 3.4),
    ),
    "logistic_regression": MlWorkloadSpec(
        name="logistic_regression",
        random_ratio=0.15,
        zipf_alpha=0.6,
        write_fraction=0.2,
        compressibility=_profile("logistic_regression", 3.0),
    ),
    "tunkrank": MlWorkloadSpec(
        name="tunkrank",
        random_ratio=0.55,
        zipf_alpha=1.1,
        write_fraction=0.3,
        compressibility=_profile("tunkrank", 3.2),
    ),
    "kmeans": MlWorkloadSpec(
        name="kmeans",
        random_ratio=0.2,
        zipf_alpha=0.8,
        write_fraction=0.15,
        compressibility=_profile("kmeans", 2.4),
    ),
    "svm": MlWorkloadSpec(
        name="svm",
        random_ratio=0.25,
        zipf_alpha=0.7,
        write_fraction=0.2,
        compressibility=_profile("svm", 2.7),
    ),
    "connected_components": MlWorkloadSpec(
        name="connected_components",
        random_ratio=0.45,
        zipf_alpha=1.0,
        write_fraction=0.35,
        compressibility=_profile("connected_components", 3.6),
    ),
    "als": MlWorkloadSpec(
        name="als",
        random_ratio=0.3,
        zipf_alpha=0.85,
        write_fraction=0.25,
        compressibility=_profile("als", 2.2),
    ),
}
