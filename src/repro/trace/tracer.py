"""Structured event tracing for simulation runs.

A :class:`Tracer` collects *typed* events — spans with a simulated
begin/end and instants at one timestamp — from every layer of a run:
the paging substrate (``page.fault``), the tier cascade
(``tier.hit/miss/demote``), the fabric and retry stack
(``net.send/retry/timeout``), the fault driver
(``fault.inject/recover``), the balance migration engine
(``migrate.reserve/copy/remap/abort``) and the serving front end
(``serve.request`` spans, ``admit.shed`` refusal instants).

Determinism is the design constraint: event ids come from a per-tracer
monotonic counter, timestamps are simulated time, and track names are
process names — no wall clock, PIDs or object ids anywhere — so two
runs of the same (spec, seed) produce byte-identical traces whatever
machine or worker pool executed them.

When tracing is disabled (the default), every simulation environment
carries the shared :data:`NULL_TRACER` whose ``enabled`` flag lets hot
paths skip event construction entirely — the disabled tracer costs one
attribute read and one branch per call site.
"""

import math
from itertools import count

from repro.trace.histogram import HistogramSet

#: The event taxonomy.  Exporters and the analyzer treat the dotted
#: prefix as the category; anything outside this set is a programming
#: error caught at record time.
EVENT_NAMES = frozenset({
    "page.fault",
    "tier.hit",
    "tier.miss",
    "tier.demote",
    "tier.put",
    "net.send",
    "net.retry",
    "net.timeout",
    "fault.inject",
    "fault.recover",
    "migrate.reserve",
    "migrate.copy",
    "migrate.remap",
    "migrate.abort",
    "ec.encode",
    "ec.reconstruct",
    "flatpath.bulk",
    "alloc.reserve",
    "alloc.free",
    "alloc.compact",
    "serve.request",
    "admit.shed",
})

#: Category of kernel-bookkeeping events that exist only on fast-path
#: runs.  They draw sequence numbers from a separate counter so that
#: stripping them (``repro.trace.export.without_categories``) recovers
#: a byte-identical event-path trace — no fast-path event ever shifts
#: the ``seq`` of a semantic event.
META_CATEGORY = "flatpath."

#: Track used for events emitted outside any simulation process.
MAIN_TRACK = "main"


class Span:
    """An open span: returned by :meth:`Tracer.begin`, closed by ``end``."""

    __slots__ = ("name", "track", "begin", "seq", "args")

    def __init__(self, name, track, begin, seq, args):
        self.name = name
        self.track = track
        self.begin = begin
        self.seq = seq
        self.args = args


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Call sites guard hot paths with ``if tracer.enabled:`` so a
    disabled run never builds argument dicts; the methods still exist
    (and return ``None``) for call sites too cold to bother guarding.
    """

    enabled = False

    def begin(self, name, **args):
        return None

    def end(self, span, **extra):
        return None

    def instant(self, name, **args):
        return None

    def latency(self, category, op, seconds):
        return None


#: The shared disabled tracer every environment starts with.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects events and latency histograms for one environment.

    Parameters
    ----------
    env:
        The owning simulation environment.  The tracer reads only
        ``env.now`` (timestamps) and ``env.active_process`` (track
        attribution) — it never mutates the environment.
    filter:
        Optional iterable of event-name prefixes (e.g. ``("tier",
        "net.send")``); events matching no prefix are dropped at record
        time.  Latency histograms are unaffected by the filter.
    """

    enabled = True

    def __init__(self, env, filter=None):
        self.env = env
        self.events = []
        self.histograms = HistogramSet()
        self._seq = count()
        self._meta_seq = count()
        self._filter = tuple(filter) if filter else None

    # -- internals -----------------------------------------------------------

    def _next_seq(self, name):
        counter = (
            self._meta_seq if name.startswith(META_CATEGORY) else self._seq
        )
        return next(counter)

    def _track(self):
        process = getattr(self.env, "active_process", None)
        if process is None:
            return MAIN_TRACK
        return process.name

    def _wanted(self, name):
        if name not in EVENT_NAMES:
            raise ValueError(
                "unknown trace event {!r}; taxonomy: {}".format(
                    name, ", ".join(sorted(EVENT_NAMES))
                )
            )
        if self._filter is None:
            return True
        return any(name.startswith(prefix) for prefix in self._filter)

    # -- recording -----------------------------------------------------------

    def begin(self, name, **args):
        """Open a span; returns the handle to pass to :meth:`end`.

        Returns ``None`` for filtered-out names, which :meth:`end`
        accepts and ignores — call sites need no second filter check.
        """
        if not self._wanted(name):
            return None
        return Span(
            name, self._track(), self.env.now, self._next_seq(name), args
        )

    def end(self, span, **extra):
        """Close a span (no-op when ``begin`` filtered it out)."""
        if span is None:
            return None
        if extra:
            span.args.update(extra)
        now = self.env.now
        dur = now - span.begin
        # Float-safe duration: ``ts + dur`` must reconstruct an end no
        # later than ``now``, or two sibling spans sharing a boundary
        # timestamp would appear to overlap downstream (the subtraction
        # can round the reconstructed end one ulp past the true end).
        while dur > 0.0 and span.begin + dur > now:
            dur = math.nextafter(dur, 0.0)
        event = {
            "name": span.name,
            "ph": "X",
            "ts": span.begin,
            "dur": dur,
            "track": span.track,
            "seq": span.seq,
            "args": span.args,
        }
        self.events.append(event)
        return event

    def instant(self, name, **args):
        """Record a zero-duration event at the current simulated time."""
        if not self._wanted(name):
            return None
        event = {
            "name": name,
            "ph": "i",
            "ts": self.env.now,
            "dur": 0.0,
            "track": self._track(),
            "seq": self._next_seq(name),
            "args": args,
        }
        self.events.append(event)
        return event

    def latency(self, category, op, seconds):
        """Record one operation's service time into the histogram set."""
        self.histograms.record(category, op, seconds)

    # -- access --------------------------------------------------------------

    def events_json(self):
        """The event list on the JSON wire shape (already plain data)."""
        return list(self.events)

    def histogram_rows(self):
        return self.histograms.rows()
