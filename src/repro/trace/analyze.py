"""Replay a trace and check structural invariants (the test oracle).

A trace is machine-checkable ground truth for properties the golden
numbers can only assert indirectly.  :class:`TraceAnalyzer` replays an
event list and checks four invariant families:

* **nesting** — spans on one track (one simulation process) are
  properly nested: a span never escapes the span that encloses it, and
  durations are non-negative;
* **crash epochs** — no successful network operation begins or
  completes strictly inside a node's down window (between a
  ``crash``/``server_loss`` injection and the matching reboot), i.e.
  no page is ever served over a link whose endpoint was dead;
* **migration pairing** — every ``migrate.reserve`` is closed by
  exactly one ``migrate.remap`` or ``migrate.abort`` for the same key,
  with no overlapping reservation windows per key;
* **retry accounting** — retries stay below the policy's attempt
  budget, and a trace with no injected faults contains no retries,
  timeouts or failed sends;
* **reconstruction** — erasure-coded repair spans
  (``ec.reconstruct`` with ``mode="repair"``) only run for nodes that
  actually crashed, never begin before the crash epoch they repair,
  and never read from or write to a node inside its down window (the
  repair routes *around* the crash epoch, not through it); degraded
  reads (``mode="degraded-read"``) happen only inside the fault
  window — between the first injection and the point the system has
  fully healed;
* **flat-path windows** — ``flatpath.bulk`` spans (stretches the
  flat-path kernel executed without events) never overlap a
  fault-injection window or an open migration window: the two-speed
  engine's run-boundary detector actually handed those back to the
  event engine;
* **allocation** — per store, every ``alloc.free`` releases a key with
  a live ``alloc.reserve`` (no double-free, no free-without-reserve),
  a key is never reserved twice without an intervening free, and
  ``alloc.compact`` spans never change live bytes (defragmentation
  moves data, it neither creates nor destroys it);
* **admission** — a request the admission layer shed (``admit.shed``)
  is refused for good: it never acquires a ``serve.request`` span, is
  never shed twice, and no admitted request is served twice.

Checks are scoped per cell (the experiment engine tags each cell's
events), so a sweep-wide trace is analyzed as independent runs.
"""

import sys
from collections import Counter

#: Fault kinds whose injection opens a node-down window.
_DOWN_KINDS = ("crash", "server_loss")


def _slack(a, b):
    """Ulp-scale tolerance for comparing reconstructed span ends.

    ``ts + dur`` round-trips (exporter microseconds, JSON) can move a
    boundary by a few ulps; anything inside this slack is a shared
    boundary, not an overlap.
    """
    return 4.0 * sys.float_info.epsilon * max(abs(a), abs(b))


class TraceInvariantError(AssertionError):
    """Raised by :meth:`TraceAnalyzer.assert_ok` when invariants fail."""


class Violation:
    """One invariant violation, anchored to the offending event."""

    __slots__ = ("invariant", "message", "event")

    def __init__(self, invariant, message, event=None):
        self.invariant = invariant
        self.message = message
        self.event = event

    def __repr__(self):
        return "Violation({}: {})".format(self.invariant, self.message)


def _ordered(events):
    return sorted(events, key=lambda event: (event["ts"], event["seq"]))


def _by_cell(events):
    cells = {}
    for event in events:
        cells.setdefault(event.get("cell", 0), []).append(event)
    return cells


class TraceAnalyzer:
    """Checks the structural invariants of one trace."""

    def __init__(self, events):
        self.events = list(events)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer):
        return cls(tracer.events_json())

    @classmethod
    def from_session(cls, session):
        return cls(session.events_json())

    @classmethod
    def from_jsonl(cls, path):
        from repro.trace.export import load_jsonl

        return cls(load_jsonl(path))

    @classmethod
    def from_chrome(cls, document):
        """Rebuild wire events from an exported Chrome trace document.

        The exporter appends events in wire order, so array order
        recovers ``seq``; metadata events recover cell and track names.
        """
        cell_of_pid = {}
        track_of_tid = {}
        events = []
        for index, record in enumerate(document.get("traceEvents", [])):
            phase = record.get("ph")
            if phase == "M":
                if record["name"] == "process_name":
                    label = record["args"]["name"]
                    cell = label.split()[-1]
                    cell_of_pid[record["pid"]] = (
                        int(cell) if cell.isdigit() else 0
                    )
                elif record["name"] == "thread_name":
                    key = (record["pid"], record["tid"])
                    track_of_tid[key] = record["args"]["name"]
                continue
            if phase not in ("X", "i"):
                continue
            events.append({
                "name": record["name"],
                "ph": phase,
                "ts": record["ts"] / 1e6,
                "dur": record.get("dur", 0.0) / 1e6,
                "track": track_of_tid.get(
                    (record["pid"], record["tid"]), "main"
                ),
                "seq": index,
                "args": record.get("args", {}),
                "cell": cell_of_pid.get(record["pid"], 0),
            })
        return cls(events)

    # -- top level -----------------------------------------------------------

    def check(self):
        """Run every invariant; returns the list of violations."""
        violations = []
        for cell, events in sorted(_by_cell(self.events).items()):
            violations.extend(self.check_nesting(events))
            violations.extend(self.check_crash_epochs(events))
            violations.extend(self.check_migration_pairing(events))
            violations.extend(self.check_retry_accounting(events))
            violations.extend(self.check_reconstruction(events))
            violations.extend(self.check_flatpath_windows(events))
            violations.extend(self.check_allocation(events))
            violations.extend(self.check_admission(events))
        return violations

    def assert_ok(self):
        """Raise :class:`TraceInvariantError` if any invariant fails."""
        violations = self.check()
        if violations:
            raise TraceInvariantError(
                "{} trace invariant violation(s):\n{}".format(
                    len(violations),
                    "\n".join(
                        "  [{}] {}".format(v.invariant, v.message)
                        for v in violations[:20]
                    ),
                )
            )
        return self

    def summary(self):
        """Event counts per name plus trace-wide extent."""
        names = Counter(event["name"] for event in self.events)
        tracks = {event["track"] for event in self.events}
        end = max(
            (event["ts"] + event["dur"] for event in self.events),
            default=0.0,
        )
        return {
            "events": len(self.events),
            "names": dict(sorted(names.items())),
            "tracks": len(tracks),
            "span_end_s": end,
        }

    # -- invariants ----------------------------------------------------------

    @staticmethod
    def check_nesting(events):
        """Spans on one track must nest properly (LIFO begin/end)."""
        violations = []
        spans = {}
        for event in events:
            if event["ph"] != "X":
                continue
            if event["dur"] < 0:
                violations.append(Violation(
                    "nesting",
                    "span {} on {} has negative duration {}".format(
                        event["name"], event["track"], event["dur"]
                    ),
                    event,
                ))
                continue
            spans.setdefault(event["track"], []).append(event)
        for track, track_spans in sorted(spans.items()):
            stack = []
            for span in _ordered(track_spans):
                begin = span["ts"]
                end = begin + span["dur"]
                # A span whose window closed at or before this begin is
                # a finished sibling/ancestor, not an encloser.
                while stack and stack[-1][1] <= begin + _slack(
                    begin, stack[-1][1]
                ):
                    stack.pop()
                if stack and end > stack[-1][1] + _slack(end, stack[-1][1]):
                    violations.append(Violation(
                        "nesting",
                        "span {} [{:.9f}, {:.9f}] on track {!r} escapes "
                        "enclosing {} ending at {:.9f}".format(
                            span["name"], begin, end, track,
                            stack[-1][2]["name"], stack[-1][1],
                        ),
                        span,
                    ))
                    continue
                stack.append((begin, end, span))
        return violations

    @staticmethod
    def down_windows(events):
        """``node -> [(down_from, down_until)]`` from the fault events."""
        windows = {}
        for event in _ordered(events):
            args = event["args"]
            if (
                event["name"] == "fault.inject"
                and args.get("kind") in _DOWN_KINDS
            ):
                windows.setdefault(args["node"], []).append(
                    [event["ts"], float("inf")]
                )
            elif (
                event["name"] == "fault.recover"
                and args.get("kind") == "reboot"
            ):
                for window in windows.get(args["node"], ()):
                    if window[1] == float("inf"):
                        window[1] = event["ts"]
                        break
        return {
            node: [tuple(window) for window in node_windows]
            for node, node_windows in windows.items()
        }

    @classmethod
    def check_crash_epochs(cls, events):
        """No successful network op begins/ends inside a down window.

        The fabric checks the path when a transfer starts and again
        when it would complete, so a send that reports success with
        either endpoint strictly inside a down epoch means a page was
        served by a dead node.  Boundary timestamps are allowed: an
        operation completing at the very instant of a crash raced it
        legally.
        """
        windows = cls.down_windows(events)

        def is_down(node, when):
            return any(
                down_from < when < down_until
                for down_from, down_until in windows.get(node, ())
            )

        violations = []
        for event in events:
            if event["name"] != "net.send" or not event["args"].get("ok"):
                continue
            begin = event["ts"]
            end = begin + event["dur"]
            endpoints = [event["args"].get("src"), event["args"].get("dst")]
            # Fan-out sends carry their destinations as a list.
            endpoints.extend(event["args"].get("dsts") or ())
            for node in endpoints:
                if node is None:
                    continue
                for when, edge in ((begin, "began"), (end, "completed")):
                    if is_down(node, when):
                        violations.append(Violation(
                            "crash-epoch",
                            "net.send {} -> {} {} at {:.9f} while {} "
                            "was down".format(
                                event["args"].get("src"),
                                event["args"].get("dst")
                                or event["args"].get("dsts"),
                                edge, when, node,
                            ),
                            event,
                        ))
        return violations

    @classmethod
    def check_reconstruction(cls, events):
        """Erasure-coded reconstruction respects the epochs it heals.

        A ``mode="repair"`` span rebuilds fragments a crashed node (its
        ``victim`` arg) lost: it must follow a real crash of that node,
        never begin before the crash epoch it repairs, and never
        overlap that epoch on a dead endpoint — its ``source`` and
        ``target`` nodes stay outside every down window while the span
        runs (the repair routes *around* the crash, not through it).
        A ``mode="degraded-read"`` span reconstructs a page from parity
        at read time: legal only inside the fault window — at or after
        the first injection, and not after the system fully healed
        (every down window closed, the last recovery and the last
        repair both finished).
        """
        spans = [
            event for event in events
            if event["name"] == "ec.reconstruct" and event["ph"] == "X"
        ]
        if not spans:
            return []
        windows = cls.down_windows(events)

        def is_down(node, when):
            return any(
                down_from < when < down_until
                for down_from, down_until in windows.get(node, ())
            )

        inject_times = [
            event["ts"] for event in events
            if event["name"] == "fault.inject"
        ]
        first_fault = min(inject_times) if inject_times else None
        still_down = any(
            down_until == float("inf")
            for node_windows in windows.values()
            for _down_from, down_until in node_windows
        )
        heal_marks = [
            event["ts"] for event in events
            if event["name"] == "fault.recover"
        ] + [
            span["ts"] + span["dur"] for span in spans
            if span["args"].get("mode") == "repair"
        ]
        healed = (
            float("inf") if still_down or not heal_marks
            else max(heal_marks)
        )
        violations = []
        for span in _ordered(spans):
            mode = span["args"].get("mode")
            begin = span["ts"]
            end = begin + span["dur"]
            if mode == "repair":
                victim = span["args"].get("victim")
                victim_windows = windows.get(victim, ())
                if not victim_windows:
                    violations.append(Violation(
                        "reconstruction",
                        "repair at {:.9f} for {!r}, which never "
                        "crashed".format(begin, victim),
                        span,
                    ))
                    continue
                epoch_start = victim_windows[0][0]
                if begin + _slack(begin, epoch_start) < epoch_start:
                    violations.append(Violation(
                        "reconstruction",
                        "repair for {!r} began at {:.9f}, before the "
                        "crash epoch starting at {:.9f}".format(
                            victim, begin, epoch_start
                        ),
                        span,
                    ))
                if not span["args"].get("ok"):
                    # An aborted attempt may have *ended* because an
                    # endpoint died mid-flight; only committed repairs
                    # must stay clear of down windows.
                    continue
                for endpoint in ("source", "target"):
                    node = span["args"].get(endpoint)
                    if node is None:
                        continue
                    for when, edge in ((begin, "began"), (end, "completed")):
                        if is_down(node, when):
                            violations.append(Violation(
                                "reconstruction",
                                "repair for {!r} {} at {:.9f} while its "
                                "{} {!r} was down".format(
                                    victim, edge, when, endpoint, node
                                ),
                                span,
                            ))
            elif mode == "degraded-read":
                if first_fault is None:
                    violations.append(Violation(
                        "reconstruction",
                        "degraded read at {:.9f} in a trace with no "
                        "injected faults".format(begin),
                        span,
                    ))
                elif begin + _slack(begin, first_fault) < first_fault:
                    violations.append(Violation(
                        "reconstruction",
                        "degraded read at {:.9f} before the first fault "
                        "at {:.9f}".format(begin, first_fault),
                        span,
                    ))
                elif begin > healed + _slack(begin, healed):
                    violations.append(Violation(
                        "reconstruction",
                        "degraded read at {:.9f} after the system fully "
                        "healed at {:.9f}".format(begin, healed),
                        span,
                    ))
        return violations

    @staticmethod
    def check_migration_pairing(events):
        """Every ``migrate.reserve`` closes with one remap or abort."""
        violations = []
        open_reservations = {}
        for event in _ordered(events):
            if not event["name"].startswith("migrate."):
                continue
            key = repr(event["args"].get("key"))
            if event["name"] == "migrate.reserve":
                if key in open_reservations:
                    violations.append(Violation(
                        "migration-pairing",
                        "overlapping reservations for key {}".format(key),
                        event,
                    ))
                open_reservations[key] = event
            elif event["name"] == "migrate.remap":
                if open_reservations.pop(key, None) is None:
                    violations.append(Violation(
                        "migration-pairing",
                        "remap without open reservation for key {}".format(
                            key
                        ),
                        event,
                    ))
            elif event["name"] == "migrate.abort":
                # Standalone aborts are legal (a move can abort before
                # its reservation was placed); one still closes any
                # open reservation for the key.
                open_reservations.pop(key, None)
        for key, event in sorted(open_reservations.items()):
            violations.append(Violation(
                "migration-pairing",
                "reservation for key {} never remapped or aborted".format(
                    key
                ),
                event,
            ))
        return violations

    @staticmethod
    def check_flatpath_windows(events):
        """Flat-path bulk spans stay clear of fault/migration windows.

        Fault windows pair ``fault.inject`` with the next
        ``fault.recover`` on the same node (unrecovered faults stay
        open forever); migration windows pair ``migrate.reserve`` with
        the closing ``remap``/``abort`` for the key.  A bulk span
        merely *touching* a window boundary is legal — the detector
        stops the kernel exactly at the edge.
        """
        bulks = [
            event for event in events if event["name"] == "flatpath.bulk"
        ]
        if not bulks:
            return []
        forever = float("inf")
        windows = []  # (start, end, label)
        open_faults = {}  # node -> [start, ...] oldest first
        open_moves = {}  # key repr -> start
        for event in _ordered(events):
            name = event["name"]
            args = event["args"]
            if name == "fault.inject":
                open_faults.setdefault(args.get("node"), []).append(
                    event["ts"]
                )
            elif name == "fault.recover":
                starts = open_faults.get(args.get("node"))
                if starts:
                    windows.append((
                        starts.pop(0), event["ts"],
                        "fault on {}".format(args.get("node")),
                    ))
            elif name == "migrate.reserve":
                open_moves[repr(args.get("key"))] = event["ts"]
            elif name in ("migrate.remap", "migrate.abort"):
                start = open_moves.pop(repr(args.get("key")), None)
                if start is not None:
                    windows.append((
                        start, event["ts"],
                        "migration of {}".format(args.get("key")),
                    ))
        for node, starts in sorted(open_faults.items()):
            for start in starts:
                windows.append(
                    (start, forever, "fault on {}".format(node))
                )
        for key, start in sorted(open_moves.items()):
            windows.append((start, forever, "migration of {}".format(key)))
        violations = []
        for span in bulks:
            begin = span["ts"]
            end = begin + span["dur"]
            for window_start, window_end, label in windows:
                right_edge = (
                    window_end if window_end == forever
                    else window_end - _slack(begin, window_end)
                )
                if (
                    begin < right_edge
                    and window_start + _slack(window_start, end) < end
                ):
                    violations.append(Violation(
                        "flatpath-window",
                        "flatpath.bulk [{:.9f}, {:.9f}] overlaps the {} "
                        "window [{:.9f}, {:.9f}]".format(
                            begin, end, label, window_start, window_end
                        ),
                        span,
                    ))
                    break
        return violations

    @staticmethod
    def check_allocation(events):
        """Allocator narration is sound: reserve/free pair per key and
        compaction conserves live bytes."""
        violations = []
        live = {}  # (store, key repr) -> reserve event
        for event in _ordered(events):
            name = event["name"]
            if not name.startswith("alloc."):
                continue
            args = event["args"]
            if name == "alloc.compact":
                before = args.get("live_before")
                after = args.get("live_after")
                if before is not None and after is not None and before != after:
                    violations.append(Violation(
                        "allocation",
                        "compaction on {!r} changed live bytes "
                        "{} -> {}".format(
                            args.get("store"), before, after
                        ),
                        event,
                    ))
                moved = args.get("moved_bytes")
                if moved is not None and moved < 0:
                    violations.append(Violation(
                        "allocation",
                        "compaction on {!r} reports negative moved "
                        "bytes {}".format(args.get("store"), moved),
                        event,
                    ))
                continue
            handle = (args.get("store"), repr(args.get("key")))
            if name == "alloc.reserve":
                if handle in live:
                    violations.append(Violation(
                        "allocation",
                        "key {} reserved twice on store {!r} without an "
                        "intervening free".format(handle[1], handle[0]),
                        event,
                    ))
                live[handle] = event
            elif name == "alloc.free":
                if live.pop(handle, None) is None:
                    violations.append(Violation(
                        "allocation",
                        "free of key {} on store {!r} with no live "
                        "reservation (double free?)".format(
                            handle[1], handle[0]
                        ),
                        event,
                    ))
        return violations

    @staticmethod
    def check_admission(events):
        """Shed requests stay shed; admitted requests are served once.

        The serving driver identifies a request by ``(tenant_class,
        request)`` — the class index plus the request's ordinal within
        its class schedule.  An ``admit.shed`` instant for a key means
        the admission layer refused it, so a ``serve.request`` span for
        the same key would mean the backend was charged for work the
        accountant billed as refused (or vice versa).  Duplicate sheds
        and duplicate serves of one key are driver bugs of the same
        family: the per-request verdict must be exactly one of
        {served once, shed once}.
        """
        violations = []
        shed = {}
        served = {}
        for event in events:
            name = event["name"]
            if name not in ("admit.shed", "serve.request"):
                continue
            args = event["args"]
            key = (args.get("tenant_class"), args.get("request"))
            book = shed if name == "admit.shed" else served
            if key in book:
                violations.append(Violation(
                    "admission",
                    "request {} of class {} {} twice".format(
                        key[1], key[0],
                        "shed" if name == "admit.shed" else "served",
                    ),
                    event,
                ))
            else:
                book[key] = event
        for key in sorted(
            set(shed) & set(served),
            key=lambda pair: (repr(pair[0]), repr(pair[1])),
        ):
            violations.append(Violation(
                "admission",
                "request {} of class {} was shed yet acquired a "
                "serve.request span".format(key[1], key[0]),
                served[key],
            ))
        return violations

    @staticmethod
    def check_retry_accounting(events):
        """Retries respect attempt budgets and require injected faults."""
        violations = []
        injected = any(
            event["name"] == "fault.inject" for event in events
        )
        for event in events:
            name = event["name"]
            if name == "net.retry":
                attempt = event["args"].get("attempt")
                budget = event["args"].get("max_attempts")
                if (
                    attempt is not None
                    and budget is not None
                    and attempt >= budget
                ):
                    violations.append(Violation(
                        "retry-accounting",
                        "retry after attempt {}/{} exceeds the "
                        "policy budget".format(attempt, budget),
                        event,
                    ))
            if injected:
                continue
            if name in ("net.retry", "net.timeout"):
                violations.append(Violation(
                    "retry-accounting",
                    "{} in a trace with no injected faults".format(name),
                    event,
                ))
            elif name == "net.send" and event["args"].get("ok") is False:
                violations.append(Violation(
                    "retry-accounting",
                    "failed net.send in a trace with no injected faults",
                    event,
                ))
        return violations
