"""``repro.trace`` — end-to-end event tracing and latency observability.

Not to be confused with :mod:`repro.workloads.traces`, which records
and replays *page-reference* traces (workload input); this package
records *execution* traces (simulation output): typed spans and
instants from the paging substrate, tier cascade, network stack, fault
driver and migration engine, plus streaming per-op latency histograms.

Layers:

* :mod:`repro.trace.tracer` — the :class:`Tracer` / :data:`NULL_TRACER`
  pair every :class:`~repro.sim.engine.Environment` carries;
* :mod:`repro.trace.runtime` — process-local sessions (how tracing
  turns on for a run);
* :mod:`repro.trace.histogram` — log-bucketed mergeable latency
  histograms;
* :mod:`repro.trace.export` — Chrome ``trace_event`` JSON (Perfetto /
  ``chrome://tracing``) and compact JSONL, plus canonical digests;
* :mod:`repro.trace.analyze` — :class:`TraceAnalyzer`, the reusable
  invariant oracle tests drive traces through.
"""

from repro.trace.analyze import TraceAnalyzer, TraceInvariantError, Violation
from repro.trace.export import (
    digest,
    load_jsonl,
    to_chrome,
    validate_chrome,
    without_categories,
    write_chrome,
    write_jsonl,
)
from repro.trace.histogram import HistogramSet, LatencyHistogram
from repro.trace.runtime import TraceSession, session, tracer_for_env
from repro.trace.tracer import EVENT_NAMES, NULL_TRACER, NullTracer, Tracer

__all__ = [
    "EVENT_NAMES",
    "HistogramSet",
    "LatencyHistogram",
    "NULL_TRACER",
    "NullTracer",
    "TraceAnalyzer",
    "TraceInvariantError",
    "TraceSession",
    "Tracer",
    "Violation",
    "digest",
    "load_jsonl",
    "session",
    "to_chrome",
    "tracer_for_env",
    "validate_chrome",
    "without_categories",
    "write_chrome",
    "write_jsonl",
]
