"""Streaming, mergeable, log-bucketed latency histograms.

A :class:`LatencyHistogram` buckets values geometrically (powers of two
above a ``least`` resolution), which covers the simulator's full
latency range — a ~100 ns DRAM hit to a multi-second degraded disk
path — in a few dozen integer counters.  Histograms are *mergeable*:
bucket counts add, so merging is associative and commutative, and
per-worker histograms collected by the experiment engine fold into one
sweep-wide histogram without losing anything but intra-bucket order.

:class:`HistogramSet` is the keyed collection the tracer records into:
one histogram per ``(category, op)`` pair — per tier, per network op —
exposed on :class:`~repro.experiments.runner.RunContext` beside the
existing tier rows.
"""

import math


class LatencyHistogram:
    """Log2-bucketed histogram of non-negative latencies.

    Bucket ``i`` (for ``i >= 1``) holds values in
    ``(least * 2**(i-1), least * 2**i]``; bucket 0 holds everything at
    or below ``least``; the last bucket additionally absorbs overflow.
    """

    __slots__ = ("least", "buckets", "counts", "total", "sum")

    def __init__(self, least=1e-9, buckets=48):
        if least <= 0:
            raise ValueError("least must be positive")
        if buckets < 2:
            raise ValueError("need at least two buckets")
        self.least = float(least)
        self.buckets = int(buckets)
        self.counts = [0] * self.buckets
        self.total = 0
        self.sum = 0.0

    # -- recording -----------------------------------------------------------

    def bucket_index(self, value):
        """The bucket a value lands in (clamped to the histogram range)."""
        if value <= self.least:
            return 0
        mantissa, exponent = math.frexp(value / self.least)
        # value/least == mantissa * 2**exponent with mantissa in [0.5, 1),
        # so the enclosing power-of-two bound is 2**(exponent-1) exactly
        # when the ratio is itself a power of two.
        index = exponent - 1 if mantissa == 0.5 else exponent
        return min(index, self.buckets - 1)

    def bound(self, index):
        """Upper bound of bucket ``index`` (inf for the overflow bucket)."""
        if not 0 <= index < self.buckets:
            raise IndexError(index)
        if index == self.buckets - 1:
            return math.inf
        return self.least * (2.0 ** index)

    def record(self, value):
        if value < 0:
            raise ValueError("latencies are non-negative")
        self.counts[self.bucket_index(value)] += 1
        self.total += 1
        self.sum += value

    # -- queries -------------------------------------------------------------

    @property
    def mean(self):
        return self.sum / self.total if self.total else 0.0

    def percentile(self, fraction):
        """Quantile estimate with linear intra-bucket interpolation.

        Walks the cumulative counts to the bucket holding the
        ``fraction`` quantile, then interpolates linearly between the
        bucket's bounds by the quantile's rank within it (the standard
        assumption that mass is uniform inside a bucket).  Bucket 0
        interpolates over ``[0, least]``; a quantile landing in the
        overflow bucket is clamped to the last finite bound — the
        histogram cannot see past its range.  The estimate is therefore
        never below the true quantile's lower bucket bound nor above
        its upper bound, and error is at most one octave.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.total == 0:
            return 0.0
        target = fraction * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if seen + count >= target:
                within = (target - seen) / count
                if index >= self.buckets - 1:
                    return self.least * (2.0 ** (self.buckets - 2))
                upper = self.least * (2.0 ** index)
                lower = 0.0 if index == 0 else upper / 2.0
                return lower + (upper - lower) * max(0.0, within)
            seen += count
        return self.least * (2.0 ** (self.buckets - 2))

    def cdf(self, value):
        """Estimated fraction of recorded samples at or below ``value``.

        The inverse of :meth:`percentile` under the same
        uniform-within-bucket assumption: full buckets below ``value``
        count whole, the bucket containing ``value`` contributes the
        linear fraction of its span covered.  Samples in the overflow
        bucket are strictly above the last finite bound, so they never
        count toward a finite ``value`` — the estimate is conservative
        from below.  An empty histogram vacuously reports 1.0.
        """
        if value < 0:
            raise ValueError("latencies are non-negative")
        if self.total == 0:
            return 1.0
        index = self.bucket_index(value)
        seen = sum(self.counts[:index])
        count = self.counts[index]
        if count:
            if index == self.buckets - 1:
                within = 0.0  # overflow samples are above any finite value
            else:
                upper = self.least * (2.0 ** index)
                lower = 0.0 if index == 0 else upper / 2.0
                within = (value - lower) / (upper - lower)
            seen += count * min(1.0, max(0.0, within))
        return min(1.0, seen / self.total)

    @property
    def p50(self):
        return self.percentile(0.50)

    @property
    def p90(self):
        return self.percentile(0.90)

    @property
    def p99(self):
        return self.percentile(0.99)

    @property
    def p999(self):
        return self.percentile(0.999)

    # -- merging -------------------------------------------------------------

    def merge(self, other):
        """Fold ``other`` into this histogram (in place; associative)."""
        if (other.least, other.buckets) != (self.least, self.buckets):
            raise ValueError("cannot merge histograms of different shapes")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total
        self.sum += other.sum
        return self

    def copy(self):
        clone = LatencyHistogram(self.least, self.buckets)
        clone.merge(self)
        return clone

    # -- serialization -------------------------------------------------------

    def to_json(self):
        return {
            "least": self.least,
            "buckets": self.buckets,
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }

    @classmethod
    def from_json(cls, doc):
        histogram = cls(least=doc["least"], buckets=doc["buckets"])
        histogram.counts = list(doc["counts"])
        histogram.total = doc["total"]
        histogram.sum = doc["sum"]
        if len(histogram.counts) != histogram.buckets:
            raise ValueError("count vector does not match bucket count")
        return histogram

    def snapshot(self):
        """One flat row for table rendering / JSON reporting."""
        return {
            "count": self.total,
            "mean_s": self.mean,
            "p50_s": self.p50,
            "p90_s": self.p90,
            "p99_s": self.p99,
            "p999_s": self.p999,
        }


class HistogramSet:
    """Latency histograms keyed by ``(category, op)``.

    The tracer records per-operation service times here — one histogram
    per tier label, one per network op — and the runner copies the rows
    onto the run's :class:`~repro.experiments.runner.RunContext`.
    """

    def __init__(self, least=1e-9, buckets=48):
        self.least = least
        self.buckets = buckets
        self._histograms = {}

    def record(self, category, op, value):
        key = (category, op)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = LatencyHistogram(self.least, self.buckets)
            self._histograms[key] = histogram
        histogram.record(value)

    def get(self, category, op):
        return self._histograms.get((category, op))

    def __len__(self):
        return len(self._histograms)

    def __iter__(self):
        return iter(sorted(self._histograms.items()))

    def merge(self, other):
        for (category, op), histogram in other._histograms.items():
            mine = self._histograms.get((category, op))
            if mine is None:
                self._histograms[(category, op)] = histogram.copy()
            else:
                mine.merge(histogram)
        return self

    def rows(self):
        """Flat per-(category, op) rows, deterministically ordered."""
        return [
            dict({"category": category, "op": op}, **histogram.snapshot())
            for (category, op), histogram in self
        ]

    def to_json(self):
        return [
            {"category": category, "op": op, "histogram": histogram.to_json()}
            for (category, op), histogram in self
        ]

    @classmethod
    def from_json(cls, docs):
        collection = cls()
        for doc in docs:
            histogram = LatencyHistogram.from_json(doc["histogram"])
            collection._histograms[(doc["category"], doc["op"])] = histogram
        return collection
