"""Trace exporters: Chrome ``trace_event`` JSON and compact JSONL.

The Chrome format (the JSON Object Format of the Trace Event
specification) loads directly into Perfetto or ``chrome://tracing``:
spans become complete ``"X"`` events, instants become ``"i"`` events,
and tracks map to (pid, tid) pairs named through ``"M"`` metadata
events.  Timestamps are microseconds of *simulated* time.

The JSONL format is one event per line on the internal wire shape —
the round-trippable source of truth :class:`~repro.trace.analyze.
TraceAnalyzer` consumes.

Both serializations are canonical (sorted keys, no wall-clock fields),
so :func:`digest` is stable across processes, worker pools and
machines: identical (spec, seed) runs yield identical digests.
"""

import hashlib
import json

#: Phases the internal wire shape uses ("X" span, "i" instant).
WIRE_PHASES = ("X", "i")

#: Keys every wire event must carry.
WIRE_KEYS = ("name", "ph", "ts", "dur", "track", "seq", "args")


def _canonical(events):
    return json.dumps(list(events), sort_keys=True, separators=(",", ":"))


def digest(events):
    """SHA-256 hex digest of the canonical event serialization."""
    return hashlib.sha256(_canonical(events).encode("utf-8")).hexdigest()


def without_categories(events, *categories):
    """``events`` minus the given dotted-name categories.

    The equivalence tooling's view of a fast-path trace: stripping the
    ``flatpath`` category (whose events draw sequence numbers from a
    separate counter precisely so this works) must recover the
    event-path run's trace byte for byte —
    ``digest(without_categories(fast, "flatpath")) == digest(slow)``.
    """
    prefixes = tuple(category + "." for category in categories)
    return [
        event for event in events
        if not event["name"].startswith(prefixes)
    ]


# -- JSONL ------------------------------------------------------------------


def dumps_jsonl(events):
    """One canonical JSON object per line."""
    return "".join(
        json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        for event in events
    )


def write_jsonl(events, path):
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_jsonl(events))


def load_jsonl(path):
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# -- Chrome trace_event ------------------------------------------------------


def to_chrome(events, meta=None):
    """The Chrome trace_event JSON Object Format document for ``events``.

    Each distinct ``cell`` (attached by the experiment engine; 0 when
    absent) becomes one pid, each distinct track within it one tid, and
    both are named via metadata events so Perfetto shows readable
    process/thread labels.  ``meta`` lands in ``otherData``.
    """
    trace_events = []
    pids = {}
    tids = {}
    for event in events:
        cell = event.get("cell", 0)
        if cell not in pids:
            pids[cell] = len(pids) + 1
            trace_events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pids[cell],
                "tid": 0,
                "args": {"name": "cell {}".format(cell)},
            })
        key = (cell, event["track"])
        if key not in tids:
            tids[key] = len(tids) + 1
            trace_events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pids[cell],
                "tid": tids[key],
                "args": {"name": event["track"]},
            })
        record = {
            "name": event["name"],
            "cat": event["name"].split(".", 1)[0],
            "ph": event["ph"],
            "ts": event["ts"] * 1e6,
            "pid": pids[cell],
            "tid": tids[key],
            "args": event["args"],
        }
        if event["ph"] == "X":
            record["dur"] = event["dur"] * 1e6
        else:
            record["s"] = "t"
        trace_events.append(record)
    document = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if meta:
        document["otherData"] = dict(meta)
    return document


def write_chrome(events, path, meta=None):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome(events, meta=meta), handle, sort_keys=True)


def validate_chrome(document):
    """Structural validation against the trace_event JSON Object Format.

    Returns a list of problems (empty = valid).  Hand-rolled rather
    than jsonschema-based so validation works in the dependency-free
    install; the checks mirror what Perfetto's importer requires: a
    ``traceEvents`` array whose members carry ``ph``/``pid``/``tid``,
    numeric non-negative ``ts``/``dur``, and a known phase code.
    """
    problems = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    trace_events = document.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["traceEvents is missing or not an array"]
    for index, event in enumerate(trace_events):
        where = "traceEvents[{}]".format(index)
        if not isinstance(event, dict):
            problems.append("{} is not an object".format(where))
            continue
        phase = event.get("ph")
        if phase not in ("X", "i", "M", "B", "E", "C"):
            problems.append("{}: unknown phase {!r}".format(where, phase))
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append("{}: missing name".format(where))
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append("{}: {} must be an integer".format(where, key))
        if "args" in event and not isinstance(event["args"], dict):
            problems.append("{}: args must be an object".format(where))
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append("{}: ts must be a non-negative number".format(where))
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    "{}: dur must be a non-negative number".format(where)
                )
        if phase == "i" and event.get("s") not in (None, "t", "p", "g"):
            problems.append("{}: bad instant scope {!r}".format(
                where, event.get("s")))
    return problems


def validate_wire(events):
    """Structural validation of the internal JSONL wire shape."""
    problems = []
    for index, event in enumerate(events):
        where = "event[{}]".format(index)
        if not isinstance(event, dict):
            problems.append("{} is not an object".format(where))
            continue
        missing = [key for key in WIRE_KEYS if key not in event]
        if missing:
            problems.append("{}: missing {}".format(where, ", ".join(missing)))
            continue
        if event["ph"] not in WIRE_PHASES:
            problems.append("{}: unknown phase {!r}".format(where, event["ph"]))
        if event["dur"] < 0:
            problems.append("{}: negative duration".format(where))
    return problems
