"""Process-local trace sessions: how tracing turns on.

Tracing is *ambient per process*: a :class:`TraceSession` is activated
(usually via the :func:`session` context manager), and every
:class:`~repro.sim.engine.Environment` constructed while it is active
receives a live :class:`~repro.trace.tracer.Tracer`; environments built
outside any session get the shared, free
:data:`~repro.trace.tracer.NULL_TRACER`.

This indirection is what lets the experiment engine trace cells that
run inside worker processes: the traced-compute wrapper opens a session
around the cell's ``compute()`` in whichever process executes it, and
ships the (plain-JSON, deterministic) event list back with the payload.
"""

from contextlib import contextmanager

from repro.trace.histogram import HistogramSet
from repro.trace.tracer import NULL_TRACER, Tracer

_active = None


class TraceSession:
    """Collects the tracers of every environment built while active."""

    def __init__(self, filter=None):
        self.filter = tuple(filter) if filter else None
        self.tracers = []

    def tracer_for(self, env):
        tracer = Tracer(env, filter=self.filter)
        self.tracers.append(tracer)
        return tracer

    def events_json(self):
        """All events, tracer creation order then record order."""
        events = []
        for tracer in self.tracers:
            events.extend(tracer.events_json())
        return events

    def histograms(self):
        """Every tracer's histograms folded into one set."""
        merged = HistogramSet()
        for tracer in self.tracers:
            merged.merge(tracer.histograms)
        return merged


def active():
    """The currently active session, or ``None``."""
    return _active


def start(filter=None):
    """Activate a new session; returns it.  Errors if one is active."""
    global _active
    if _active is not None:
        raise RuntimeError("a trace session is already active")
    _active = TraceSession(filter=filter)
    return _active


def stop():
    """Deactivate and return the active session."""
    global _active
    if _active is None:
        raise RuntimeError("no trace session is active")
    finished, _active = _active, None
    return finished


@contextmanager
def session(filter=None):
    """``with session() as s:`` — trace everything built inside."""
    current = start(filter=filter)
    try:
        yield current
    finally:
        stop()


def tracer_for_env(env):
    """The tracer a new environment should carry (engine constructor hook)."""
    if _active is None:
        return NULL_TRACER
    return _active.tracer_for(env)
