"""Memory balancing: skewed pressure x policy x group size (§IV-D/E).

The paper's §II motivation is an imbalance argument — some machines
drown while "average of 30% idle memory" sits next door — and §IV-D/E
make the fix a control-plane problem: node managers report, group
leaders decide, donated memory moves.  This experiment measures that
loop end to end.

Every cell builds a cluster whose placement is the deliberately skewed
``first_fit`` static baseline, drives a skewed-pressure workload
(``hotspot``: two nodes flood the cluster tier; ``uniform``: everyone
stores a little, first-fit still piles it onto the lowest ids), and
attaches the :mod:`repro.balance` control plane under one of its
policies.  ``static`` is the do-nothing baseline; the sweep reports how
much each active policy narrows the imbalance — the coefficient of
variation of per-node receive-pool utilization — versus that baseline,
plus migration counts, moved bytes and plan latency.

Faulted cells replay a seeded chaos schedule against the two
highest-id nodes while migrations are in flight, proving the dual-entry
protocol aborts cleanly: the run stays byte-deterministic and no page
is ever lost or duplicated *by a migration* (crash losses with
replication 1 are the workload's problem, quantified elsewhere by
``resilience_recovery``).

Cell volume scales with the receive pools themselves, so utilization
levels — and therefore policy behaviour — are scale-invariant.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.metrics.reporting import format_table

EXPERIMENT = "memory_balancing"

NUM_NODES = 6
ENTRY_BYTES = 64 * 1024
#: Balancing policies swept (static first: it is the baseline).
POLICIES = ("static", "threshold", "proportional", "greedy")
#: Group sizes swept: one flat group vs two groups of three.
GROUP_SIZES = (0, 3)
WORKLOADS = ("hotspot", "uniform")
#: Chaos intensity for the migration-under-faults cells.
CHAOS_RATE = 2.0
#: Nodes the chaos schedule may touch (kept clear of the hot putters).
CHAOS_NODES = ("node4", "node5")
MAX_CONCURRENT_DOWN = 1
#: A cell "converged" when its imbalance CoV first drops to this.
CONVERGENCE_COV = 0.5
#: Fraction of one receive pool each hot putter stores.
HOT_FILL = 0.9
#: Fraction of one receive pool each uniform putter stores.
UNIFORM_FILL = 0.3


def cells(scale=1.0, seed=0, duration=3.0, epoch=0.1):
    """The sweep: workload x policy x group size, plus chaos cells."""
    grid = [
        RunSpec.make(
            EXPERIMENT,
            workload=workload,
            seed=seed,
            scale=scale,
            policy=policy,
            group=group,
            rate=0.0,
            duration=duration,
            epoch=epoch,
        )
        for workload in WORKLOADS
        for group in GROUP_SIZES
        for policy in POLICIES
    ]
    chaos = [
        RunSpec.make(
            EXPERIMENT,
            workload="hotspot",
            seed=seed,
            scale=scale,
            policy=policy,
            group=0,
            rate=CHAOS_RATE,
            duration=duration,
            epoch=epoch,
        )
        for policy in POLICIES
    ]
    return grid + chaos


def pool_slabs(scale):
    """Receive-pool slabs per node at this scale (min 2 x 1 MiB)."""
    return max(2, round(10 * scale))


def build_schedule(seed, rate, horizon):
    """The chaos schedule for one (seed, rate) — policy-independent.

    Drawn from a dedicated RNG stream named by the rate alone, so every
    policy cell of the sweep faces byte-identical faults.  Only
    reversible faults (no permanent server loss): the cells compare
    steady states, and a permanently absent node would change the
    utilization population, not just perturb it.
    """
    from repro.faults.schedule import random_schedule
    from repro.sim.rng import RngStreams

    if rate <= 0:
        return None
    rng = RngStreams(seed).stream("balance-faults/rate={:g}".format(rate))
    return random_schedule(
        rng,
        CHAOS_NODES,
        horizon,
        rate,
        max_concurrent_down=MAX_CONCURRENT_DOWN,
        guaranteed_loss=False,
    )


def _build_cluster(spec):
    from repro.core.cluster import DisaggregatedCluster
    from repro.core.config import ClusterConfig
    from repro.hw.latency import MiB

    options = spec.options
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        servers_per_node=1,
        server_memory_bytes=16 * MiB,
        donation_fraction=0.0,  # every put lands on the cluster tier
        receive_pool_slabs=pool_slabs(spec.scale),
        send_pool_slabs=2,
        replication_factor=1,
        placement_policy="first_fit",
        group_size=options["group"],
        seed=spec.seed,
    )
    return DisaggregatedCluster.build(config)


def compute(spec):
    from repro.faults.driver import FaultDriver
    from repro.hw.latency import MiB

    options = spec.options
    horizon = options["duration"]
    load_window = 0.5 * horizon
    cluster = _build_cluster(spec)
    env = cluster.env
    capacity = pool_slabs(spec.scale) * cluster.config.slab_bytes
    if spec.workload == "hotspot":
        putters = {"node0": HOT_FILL, "node1": HOT_FILL}
    else:
        putters = {n.node_id: UNIFORM_FILL for n in cluster.nodes()}

    def drive(server, count, gap, tag):
        for i in range(count):
            yield env.timeout(gap)
            yield from server.ldmc.put(("bal", tag, i), ENTRY_BYTES)

    for node_id in sorted(putters, key=lambda n: int(n[4:])):
        count = int(putters[node_id] * capacity / ENTRY_BYTES)
        server = cluster.node(node_id).servers[0]
        env.process(
            drive(server, count, load_window / count, node_id),
            name="drive:" + node_id,
        )

    schedule = build_schedule(spec.seed, options["rate"], horizon)
    if schedule is not None:
        FaultDriver(cluster, schedule).install()

    balancer = cluster.attach_balancer(
        policy=options["policy"], epoch=options["epoch"], start=True
    )
    env.run(until=horizon)

    utils = [
        (
            node.receive_pool.used_bytes / node.receive_pool.capacity_bytes
            if node.receive_pool.capacity_bytes
            else 0.0
        )
        for node in cluster.nodes()
    ]
    metrics = balancer.metrics
    return {
        "metrics": metrics.snapshot(),
        "converged_s": metrics.convergence_time(CONVERGENCE_COV),
        "final_utils": utils,
        "util_spread": max(utils) - min(utils),
        "mean_receive_utilization": balancer.telemetry.monitor.summary()[
            "mean_receive_utilization"
        ],
        "remote_puts": sum(n.remote_puts for n in cluster.nodes()),
        "network_mb": cluster.fabric.total_bytes / MiB,
        "faults": len(schedule.events) if schedule is not None else 0,
    }


def report(results):
    indexed = {
        (
            spec.workload,
            spec.options["group"],
            spec.options["rate"],
            spec.options["policy"],
        ): payload
        for spec, payload in results
    }
    rows = []
    for workload in WORKLOADS:
        for group in GROUP_SIZES:
            for rate in sorted({key[2] for key in indexed}):
                static = indexed.get((workload, group, rate, "static"))
                for policy in POLICIES:
                    payload = indexed.get((workload, group, rate, policy))
                    if payload is None:
                        continue
                    metrics = payload["metrics"]
                    rows.append(
                        {
                            "workload": workload,
                            "group": group,
                            "rate": rate,
                            "policy": policy,
                            "cov_initial": metrics["cov_initial"],
                            "cov_final": metrics["cov_final"],
                            "cov_vs_static": (
                                metrics["cov_final"]
                                - static["metrics"]["cov_final"]
                                if static is not None
                                else None
                            ),
                            "converged_s": payload["converged_s"],
                            "migrations": metrics["migrations_completed"],
                            "aborted": metrics["migrations_aborted"],
                            "moved_mb": metrics["moved_bytes"] / (1024.0 * 1024.0),
                            "plan_ms": metrics["plan_latency"]["mean"] * 1e3,
                            "util_spread": payload["util_spread"],
                            "faults": payload["faults"],
                        }
                    )
    return {"rows": rows}


def skewed_rows(result):
    """The rows of the skewed (hotspot, fault-free) sweep — the ones on
    which every active policy must strictly beat the static baseline."""
    return [
        row
        for row in result["rows"]
        if row["workload"] == "hotspot" and row["rate"] == 0.0
    ]


def run(scale=1.0, seed=0, duration=3.0, epoch=0.1):
    """Balancing effect per (workload, policy, group size)."""
    return run_serial(
        sys.modules[__name__],
        scale=scale,
        seed=seed,
        duration=duration,
        epoch=epoch,
    )


def render(result):
    return format_table(
        result["rows"],
        title=(
            "Memory balancing — imbalance CoV vs the static first-fit "
            "baseline (skewed pressure x policy x group size)"
        ),
        float_format="{:.4g}",
    )


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
