"""Figure 4: effect of the compression ratio on completion time.

Logistic regression at the 50% configuration, with the working set's
mean compressibility swept over {1.3, 2, 3, 4}.  As in the paper, the
node shared memory pool is sized so it cannot hold the raw overflow:
better compression keeps more of the swapped set in the pool, and the
remainder goes to

(a) remote memory (cluster-level disaggregated memory), or
(b) local disk (no remote slabs reserved),

which are the two panels of Figure 4.  Expected shape: completion time
falls as pages compress better (capacity effect + fewer wire bytes),
and the disk backend is both far slower and far more ratio-sensitive.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.experiments.runner import default_cluster_config, run_paging_workload
from repro.metrics.reporting import format_table

EXPERIMENT = "fig4"
RATIOS = (1.3, 2.0, 3.0, 4.0)
TARGETS = ("remote", "disk")


def _spec(ratio, scale):
    from repro.mem.compression import CompressibilityProfile
    from repro.workloads.ml import ML_WORKLOADS

    base = ML_WORKLOADS["logistic_regression"]
    # The working set stays fixed (the pool:working-set ratio is the
    # experiment); ``scale`` only trims iterations.
    return base.with_overrides(
        pages=2048,
        iterations=max(2, round(3 * scale)),
        # Near-constant per-page ratio: the sweep isolates the ratio's
        # effect (noise would smear the granularity steps).
        compressibility=CompressibilityProfile(
            "lr-r{}".format(ratio), mean_ratio=ratio, sigma=0.02,
            incompressible_fraction=0.0,
        ),
    )


def cells(scale=1.0, seed=0):
    """One cell per (compression ratio, overflow target)."""
    return [
        RunSpec.make(EXPERIMENT, backend="fastswap",
                     workload="logistic_regression", fit=0.5, seed=seed,
                     scale=scale, ratio=ratio, target=target)
        for ratio in RATIOS
        for target in TARGETS
    ]


def compute(spec):
    from repro.swap.fastswap import FastSwapConfig

    options = spec.options
    workload = _spec(options["ratio"], spec.scale)
    # A shared pool too small for the raw overflow: the compression
    # ratio decides how much of the swapped set stays node-local.
    # Note the 2.0 and 3.0 points share a granularity class (both round
    # to 2 KB chunks), so they plateau — a real FastSwap property.
    tight = dict(donation_fraction=0.04)
    if options["target"] == "remote":
        result = run_paging_workload(
            spec.backend,
            workload,
            spec.fit,
            seed=spec.seed,
            cluster_config=default_cluster_config(seed=spec.seed, **tight),
            fast_path=spec.fast_path,
        )
    else:
        result = run_paging_workload(
            spec.backend,
            workload,
            spec.fit,
            seed=spec.seed,
            # No remote slab reservations: overflow batches fall to disk.
            fastswap_config=FastSwapConfig(slabs_per_target=0),
            cluster_config=default_cluster_config(
                seed=spec.seed, receive_pool_slabs=1, **tight
            ),
            fast_path=spec.fast_path,
        )
    return result.to_json()


def report(results):
    times = {
        (spec.options["ratio"], spec.options["target"]):
            payload["completion_time"]
        for spec, payload in results
    }
    rows = [
        {
            "compress_ratio": ratio,
            "remote_completion_s": times[(ratio, "remote")],
            "disk_completion_s": times[(ratio, "disk")],
        }
        for ratio in RATIOS
    ]
    return {"rows": rows}


def run(scale=1.0, seed=0):
    """Completion time per (target, ratio); targets: remote, disk."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed)


def render(result):
    return format_table(
        result["rows"],
        title="Figure 4 — compression ratio vs completion time "
              "(LR, 50% config)",
    )


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
