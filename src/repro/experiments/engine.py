"""Parallel experiment engine with a content-addressed result cache.

Every Section V figure is a sweep of independent simulator runs: a
fresh cluster per cell, deterministic from the seed.  The engine turns
that independence into speed twice over:

* **Fan-out** — a sweep is declared as a list of :class:`RunSpec`
  cells; :func:`execute` computes them across a
  ``ProcessPoolExecutor`` (``jobs`` workers).  Results are collected
  by cell index, so reports are byte-identical whatever the completion
  order — ``all --jobs 8`` prints exactly what ``--jobs 1`` prints.
* **Memoization** — each cell's payload is cached on disk under a
  content address: a SHA-256 over the canonical RunSpec JSON plus a
  code-version salt (a hash of the ``repro`` source tree).  Re-running
  a figure recomputes only cells whose spec *or* code changed; editing
  any source file invalidates the whole cache.

Payloads are plain JSON data (the engine normalizes them through a
JSON round-trip), so a cache hit and a fresh compute are
indistinguishable byte-for-byte downstream.
"""

import hashlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, fields, replace
from functools import lru_cache, partial
from pathlib import Path


@dataclass(frozen=True)
class RunSpec:
    """One cell of an experiment sweep, fully described and picklable.

    ``overrides`` holds experiment-specific knobs as a canonical JSON
    string (sorted keys), which keeps the spec hashable and its cache
    key stable; build specs through :meth:`make` and read the knobs
    back through :attr:`options`.
    """

    experiment: str
    backend: str = ""
    workload: str = ""
    fit: float = 0.0
    seed: int = 0
    scale: float = 1.0
    overrides: str = "{}"
    #: Drive runner-based cells through the two-speed flat-path engine.
    #: Results are byte-identical either way, but the flag is part of
    #: the spec (and therefore the cache key) so an equivalence check
    #: of ``--fast-path`` on vs off never serves one side from the
    #: other's cache entry.
    fast_path: bool = False

    @classmethod
    def make(cls, experiment, backend="", workload="", fit=0.0, seed=0,
             scale=1.0, fast_path=False, **overrides):
        """Build a spec, freezing ``overrides`` into canonical JSON."""
        return cls(
            experiment=experiment,
            backend=backend,
            workload=workload,
            fit=fit,
            seed=seed,
            scale=scale,
            overrides=json.dumps(overrides, sort_keys=True),
            fast_path=fast_path,
        )

    @property
    def options(self):
        """The experiment-specific overrides, thawed back to a dict."""
        return json.loads(self.overrides)

    def to_dict(self):
        doc = {spec.name: getattr(self, spec.name) for spec in fields(self)}
        doc["overrides"] = self.options
        return doc

    @classmethod
    def from_dict(cls, doc):
        doc = dict(doc)
        doc["overrides"] = json.dumps(doc.get("overrides", {}), sort_keys=True)
        return cls(**doc)

    def cache_key(self, salt=""):
        """Content address: canonical spec JSON + code-version salt."""
        doc = json.dumps(
            {"salt": salt, "spec": self.to_dict()}, sort_keys=True
        )
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_version():
    """Hash of the ``repro`` source tree — the cache's code salt.

    Any edit to any module invalidates every cached cell; that is the
    cheap, always-correct invalidation rule (simulator outputs can
    depend on arbitrarily distant code).
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """Content-addressed on-disk cache of cell payloads.

    One JSON file per cell under ``root`` (default: ``.repro-cache/``
    in the working directory, overridable via the ``REPRO_CACHE_DIR``
    environment variable).  Files are immutable once written — the key
    embeds everything the payload depends on — so eviction is simply
    deleting files (``clear()`` or ``rm -r``).
    """

    def __init__(self, root=None, salt=None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.salt = code_version() if salt is None else salt

    def path_for(self, spec):
        return self.root / (spec.cache_key(self.salt) + ".json")

    def load(self, spec):
        """The cached payload for ``spec``, or None on a miss."""
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        return entry.get("payload")

    def store(self, spec, payload):
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "salt": self.salt,
            "spec": spec.to_dict(),
            "payload": payload,
        }
        path = self.path_for(spec)
        tmp = path.with_suffix(".tmp.{}".format(os.getpid()))
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        os.replace(tmp, path)

    def entries(self):
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def size_bytes(self):
        return sum(path.stat().st_size for path in self.entries())

    def clear(self):
        """Evict everything; returns the number of entries removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed


@dataclass
class EngineStats:
    """What one :func:`execute` sweep did (surfaced by ``--json``)."""

    jobs: int = 1
    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def as_dict(self):
        return {
            "jobs": self.jobs,
            "cells": self.cells,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def merge(self, other):
        self.cells += other.cells
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses


def normalize(payload):
    """Force ``payload`` onto the JSON wire shape.

    Both freshly computed and cache-loaded payloads pass through the
    same JSON round-trip, so reports cannot distinguish them (tuples
    become lists, dict keys become strings, floats survive exactly).
    """
    return json.loads(json.dumps(payload))


def _registry_compute(spec):
    """Default cell compute: dispatch to the registered module."""
    from repro.experiments import registry

    module = registry.load(spec.experiment)
    return module.compute(spec)


def _compute_entry(compute, spec_doc):
    """Worker-process entry point: dict in, normalized payload out."""
    spec = RunSpec.from_dict(spec_doc)
    return normalize(compute(spec))


def _traced_compute(compute, trace_filter, spec):
    """Compute one cell inside a trace session; bundle events with it.

    Runs in whichever process executes the cell (the session is
    process-local), and ships the plain-JSON deterministic event list
    back beside the payload — collected by cell index, so serial and
    parallel sweeps produce identical traces.
    """
    from repro.trace import runtime

    with runtime.session(filter=trace_filter) as active:
        payload = compute(spec)
    return {"payload": payload, "events": active.events_json()}


def execute_traced(specs, jobs=1, trace_filter=None, compute=None):
    """Like :func:`execute`, with tracing: ``(payloads, stats, events)``.

    ``events`` is one event list per cell, in cell order.  Tracing
    bypasses the result cache entirely — a cached payload carries no
    events, and a traced sweep must observe every cell executing.
    """
    compute = compute or _registry_compute
    wrapped = partial(
        _traced_compute, compute, tuple(trace_filter) if trace_filter else None
    )
    bundles, stats = execute(specs, jobs=jobs, cache=None, compute=wrapped)
    payloads = [bundle["payload"] for bundle in bundles]
    events = [bundle["events"] for bundle in bundles]
    return payloads, stats, events


def execute(specs, jobs=1, cache=None, compute=None):
    """Compute every cell; returns ``(payloads, stats)`` in cell order.

    Cache hits are served without computing; remaining cells run in
    spec order (``jobs == 1``) or across ``jobs`` worker processes.
    Duplicate specs within one sweep are computed once.
    """
    specs = list(specs)
    compute = compute or _registry_compute
    stats = EngineStats(jobs=jobs, cells=len(specs))
    payloads = [None] * len(specs)
    pending = []  # first index per distinct uncached spec
    duplicates = {}  # index -> first index with the same spec
    first_seen = {}
    for index, spec in enumerate(specs):
        if spec in first_seen:
            duplicates[index] = first_seen[spec]
            continue
        first_seen[spec] = index
        if cache is not None:
            hit = cache.load(spec)
            if hit is not None:
                payloads[index] = hit
                stats.cache_hits += 1
                continue
        pending.append(index)
    if pending:
        entry = partial(_compute_entry, compute)
        if jobs > 1 and len(pending) > 1:
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                computed = list(
                    pool.map(entry, [specs[i].to_dict() for i in pending])
                )
        else:
            computed = [entry(specs[i].to_dict()) for i in pending]
        for index, payload in zip(pending, computed):
            payloads[index] = payload
            stats.cache_misses += 1
            if cache is not None:
                cache.store(specs[index], payload)
    pending_set = set(pending)
    for index, source in duplicates.items():
        payloads[index] = payloads[source]
        # Keep hits + misses == cells: a duplicate shares its source's fate.
        if source in pending_set:
            stats.cache_misses += 1
        else:
            stats.cache_hits += 1
    return payloads, stats


def run_serial(module, scale=1.0, seed=0, **opts):
    """Serial, uncached sweep — the body of every module's ``run()``."""
    specs = module.cells(scale=scale, seed=seed, **opts)
    results = [(spec, normalize(module.compute(spec))) for spec in specs]
    return module.report(results)


def tier_rows_from(specs, payloads):
    """Per-tier breakdown rows carried back in cell payloads.

    Runner-based cells serialize their full run result (including
    ``tier_stats``/``tier_stack``) either as the payload itself or
    under a ``"run"`` key; this reassembles the same rows the old
    process-global registry used to collect, but from data that
    traveled through the cache/worker boundary.
    """
    rows = []
    for spec, payload in zip(specs, payloads):
        if not isinstance(payload, dict):
            continue
        run_doc = payload
        if not run_doc.get("tier_stats") and isinstance(
            payload.get("run"), dict
        ):
            run_doc = payload["run"]
        for tier_row in run_doc.get("tier_stats") or []:
            row = {
                "backend": run_doc.get("backend", spec.backend),
                "workload": run_doc.get("workload", spec.workload),
                "fit": run_doc.get("fit_fraction", spec.fit),
                "stack": run_doc.get("tier_stack", ""),
            }
            row.update(tier_row)
            rows.append(row)
    return rows


def latency_rows_from(specs, payloads):
    """Per-(category, op) latency rows carried back in traced payloads.

    Mirrors :func:`tier_rows_from` for the ``latency_stats`` rows a
    traced runner attaches to its result.
    """
    rows = []
    for spec, payload in zip(specs, payloads):
        if not isinstance(payload, dict):
            continue
        run_doc = payload
        if not run_doc.get("latency_stats") and isinstance(
            payload.get("run"), dict
        ):
            run_doc = payload["run"]
        for latency_row in run_doc.get("latency_stats") or []:
            row = {
                "backend": run_doc.get("backend", spec.backend),
                "workload": run_doc.get("workload", spec.workload),
                "fit": run_doc.get("fit_fraction", spec.fit),
            }
            row.update(latency_row)
            rows.append(row)
    return rows


@dataclass
class ExperimentRun:
    """Everything one engine invocation produced."""

    name: str
    specs: list
    payloads: list
    result: dict
    stats: EngineStats
    tier_rows: list = field(default_factory=list)
    latency_rows: list = field(default_factory=list)
    #: Wire-shape trace events, each tagged with its cell index
    #: (empty unless the sweep ran with ``trace=True``).
    trace_events: list = field(default_factory=list)

    def to_json(self):
        return {
            "experiment": self.name,
            "engine": self.stats.as_dict(),
            "result": self.result,
        }


def select_cells(specs, subset):
    """The ``subset`` of ``specs`` by sweep index, order-preserving.

    ``subset`` is an iterable of cell indices into the full sweep
    (duplicates collapse, order is the sweep's own); indices outside
    the sweep raise — a silent drop would let a CI step gate on an
    empty subset.
    """
    specs = list(specs)
    wanted = sorted(set(subset))
    bad = [index for index in wanted if not 0 <= index < len(specs)]
    if bad:
        raise ValueError(
            "cell indices {} outside the sweep (0..{})".format(
                bad, len(specs) - 1
            )
        )
    return [specs[index] for index in wanted]


def run_experiment(name, scale=1.0, seed=0, jobs=1, cache=None, trace=False,
                   trace_filter=None, fast_path=False, cells=None, **opts):
    """Run one registered experiment end to end through the engine.

    With ``trace=True`` every cell computes inside a trace session
    (the cache is bypassed) and the run carries the merged event list,
    each event tagged with its cell index.  ``fast_path=True`` stamps
    every cell spec so runner-based cells drive the two-speed engine;
    payloads are byte-identical to the event-path sweep.  ``cells``
    (an iterable of sweep indices) restricts the run to a subset of
    the declared cells — the report covers just that subset, which is
    how CI drives a single million-user cell without paying for the
    whole sweep.
    """
    from repro.experiments import registry

    module = registry.load(name)
    specs = module.cells(scale=scale, seed=seed, **opts)
    if cells is not None:
        specs = select_cells(specs, cells)
    if fast_path:
        specs = [replace(spec, fast_path=True) for spec in specs]
    trace_events = []
    if trace:
        payloads, stats, cell_events = execute_traced(
            specs, jobs=jobs, trace_filter=trace_filter
        )
        for index, events in enumerate(cell_events):
            for event in events:
                tagged = dict(event)
                tagged["cell"] = index
                trace_events.append(tagged)
    else:
        payloads, stats = execute(specs, jobs=jobs, cache=cache)
    result = module.report(list(zip(specs, payloads)))
    return ExperimentRun(
        name=name,
        specs=specs,
        payloads=payloads,
        result=result,
        stats=stats,
        tier_rows=tier_rows_from(specs, payloads),
        latency_rows=latency_rows_from(specs, payloads),
        trace_events=trace_events,
    )
