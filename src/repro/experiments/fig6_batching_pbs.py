"""Figure 6: window batching and proactive batch swap-in (PBS).

Four sizes of disaggregated-memory workload (growing working sets at a
fixed 50% fit) under: FastSwap with PBS, FastSwap without PBS,
Infiniswap, and Linux disk swap.

Expected shape: FastSwap+PBS < FastSwap-PBS < Infiniswap << Linux at
every size, with the PBS advantage growing as more of the working set
lives remotely.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.experiments.runner import run_paging_workload
from repro.metrics.reporting import format_table

EXPERIMENT = "fig6"

#: Working-set sizes (pages) before scaling — the "4 sizes" of Fig. 6.
SIZES = (1024, 2048, 3072, 4096)

#: label -> (backend, FastSwapConfig kwargs or None)
SYSTEMS = {
    "fastswap_pbs": ("fastswap", dict(sm_fraction=0.0, pbs=True)),
    "fastswap_nopbs": ("fastswap", dict(sm_fraction=0.0, pbs=False)),
    "infiniswap": ("infiniswap", None),
    "linux": ("linux", None),
}


def cells(scale=1.0, seed=0, include_linux=True):
    """One cell per (size, system)."""
    labels = list(SYSTEMS)
    if not include_linux:
        labels.remove("linux")
    return [
        RunSpec.make(EXPERIMENT, backend=SYSTEMS[label][0],
                     workload="logistic_regression", fit=0.5, seed=seed,
                     scale=scale, size=size, system=label)
        for size in SIZES
        for label in labels
    ]


def compute(spec):
    from repro.swap.fastswap import FastSwapConfig
    from repro.workloads.ml import ML_WORKLOADS

    options = spec.options
    workload = ML_WORKLOADS[spec.workload].with_overrides(
        pages=max(256, int(options["size"] * spec.scale)), iterations=3
    )
    _backend, config_kwargs = SYSTEMS[options["system"]]
    # Remote-heavy configuration so batching actually matters.
    fastswap_config = (
        FastSwapConfig(**config_kwargs) if config_kwargs else None
    )
    result = run_paging_workload(
        spec.backend, workload, spec.fit, seed=spec.seed,
        fastswap_config=fastswap_config,
        fast_path=spec.fast_path,
    )
    return result.to_json()


def report(results):
    times = {}
    pages = {}
    for spec, payload in results:
        options = spec.options
        times[(options["size"], options["system"])] = (
            payload["completion_time"]
        )
        pages[options["size"]] = max(256, int(options["size"] * spec.scale))
    labels = {spec.options["system"] for spec, _payload in results}
    rows = []
    for size in SIZES:
        row = {"pages": pages[size]}
        for label in ("fastswap_pbs", "fastswap_nopbs", "infiniswap",
                      "linux"):
            if label in labels:
                row["{}_s".format(label)] = times[(size, label)]
        rows.append(row)
    return {"rows": rows}


def run(scale=1.0, seed=0, include_linux=True):
    """Completion time per (size, system)."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed,
                      include_linux=include_linux)


def render(result):
    return format_table(
        result["rows"],
        title="Figure 6 — batching + PBS vs Infiniswap vs Linux "
              "(completion time, 50% config)",
    )


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
