"""Figure 6: window batching and proactive batch swap-in (PBS).

Four sizes of disaggregated-memory workload (growing working sets at a
fixed 50% fit) under: FastSwap with PBS, FastSwap without PBS,
Infiniswap, and Linux disk swap.

Expected shape: FastSwap+PBS < FastSwap-PBS < Infiniswap << Linux at
every size, with the PBS advantage growing as more of the working set
lives remotely.
"""

from repro.experiments.runner import run_paging_workload
from repro.metrics.reporting import format_table
from repro.swap.fastswap import FastSwapConfig
from repro.workloads.ml import ML_WORKLOADS

#: Working-set sizes (pages) before scaling — the "4 sizes" of Fig. 6.
SIZES = (1024, 2048, 3072, 4096)


def run(scale=1.0, seed=0, include_linux=True):
    """Completion time per (size, system)."""
    rows = []
    base = ML_WORKLOADS["logistic_regression"]
    for size in SIZES:
        spec = base.with_overrides(
            pages=max(256, int(size * scale)), iterations=3
        )
        # Remote-heavy configuration so batching actually matters.
        pbs = run_paging_workload(
            "fastswap", spec, 0.5, seed=seed,
            fastswap_config=FastSwapConfig(sm_fraction=0.0, pbs=True),
        )
        no_pbs = run_paging_workload(
            "fastswap", spec, 0.5, seed=seed,
            fastswap_config=FastSwapConfig(sm_fraction=0.0, pbs=False),
        )
        infiniswap = run_paging_workload("infiniswap", spec, 0.5, seed=seed)
        row = {
            "pages": spec.pages,
            "fastswap_pbs_s": pbs.completion_time,
            "fastswap_nopbs_s": no_pbs.completion_time,
            "infiniswap_s": infiniswap.completion_time,
        }
        if include_linux:
            linux = run_paging_workload("linux", spec, 0.5, seed=seed)
            row["linux_s"] = linux.completion_time
        rows.append(row)
    return {"rows": rows}


def main():
    result = run()
    print(
        format_table(
            result["rows"],
            title="Figure 6 — batching + PBS vs Infiniswap vs Linux "
                  "(completion time, 50% config)",
        )
    )
    return result


if __name__ == "__main__":
    main()
