"""Open-loop serving: QoS mix x arrival process x pressure x chaos.

The north-star serving scenario: a hundred-thousand-user tenant mix
(three QoS classes, aggregated per class — see
:mod:`repro.serve.arrivals`) offers load open-loop against each swap
system while memory pressure and, in the chaos cells, a seeded fault
schedule squeeze the backend.  The figure of merit is not raw
throughput but **goodput-under-SLO** per class: a system that serves
best-effort requests while gold requests rot in the queue scores
poorly even at identical completion counts.

A second cell family sweeps **admission control**: on the disk-backed
system under bursty arrivals, shed mixes whose best-effort scan class
overloads and pollutes the store are run under every admission policy
(:mod:`repro.serve.admission`) including the no-shed control.  The CI
gate there is shedding dominance: every policy beats no-shed on gold
goodput-under-SLO while the no-shed control demonstrably collapses —
at scale 1 with over a million simulated users per cell.

Expected shape: under pressure the systems separate as in the paging
experiments — the RDMA systems absorb the squeezed working set at
microsecond tails while the disk-backed system collapses into
sustained queueing (goodput well below offered load, best-effort
starving first).  In every cell gold's *envelope attainment* (the
share of its load completed within the loosest SLO in the mix — see
:meth:`repro.serve.accountant.ClassAccount.within`) is at least
best-effort's: that is the delay-dominance the priority scheduler
guarantees once burst envelopes are phase-aligned, and it is the CI
gate.  Per-class *SLO* attainment is deliberately not gated
cross-class — a 25 ms backlog violates gold's 20 ms SLO but not
best-effort's 200 ms one, so classes with SLOs of different widths
can rank either way without any scheduling fault.  Chaos (peer
crashes and link flaps) stretches the remote-only system's tails,
cannot touch the disk-only system, and often leaves FastSwap
byte-identical — its local shared-memory tier (the paper's tier-1)
absorbs the overflow before any remote slab is involved.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.metrics.reporting import format_table

EXPERIMENT = "open_loop_serving"

SYSTEMS = ("fastswap", "infiniswap", "linux")
ARRIVALS = ("poisson", "bursty", "diurnal")

#: Peer memory servers of the measured node in the default testbed.
PEER_NODES = ("node1", "node2", "node3")

#: (fit_fraction, chaos) pressure points: comfortable, squeezed, and
#: squeezed with faults underneath.
PRESSURES = ((0.7, False), (0.35, False), (0.35, True))

#: Tenants per QoS class at scale=1.0 (three classes -> 120k users).
TENANTS_PER_CLASS = 40_000

#: One tenant's request rate; offered load is aggregated per class
#: (40k tenants x 0.15 rps = 6000 requests/s per class at scale 1).
#: Chosen so the squeezed cells push the disk-backed system past its
#: service capacity (sustained queueing), while the RDMA systems keep
#: an order of magnitude of headroom.
PER_TENANT_RATE = 0.15

#: Expected random fault events over the horizon in chaos cells.
CHAOS_RATE = 4.0

# -- the admission-control (shed) sweep --------------------------------------
#
# A second family of cells crosses admission policy x QoS mix x
# pressure on the disk-backed system under *bursty* arrivals.  The
# mixes are built to collapse without admission control: a huge
# best-effort scan class (near-uniform over the full store) pollutes
# the resident set between bursts, so gold's tight hot set — which
# fits comfortably on its own — faults at disk speed exactly when its
# own burst lands.  Class rates are ABSOLUTE requests/s (not scaled):
# ``scale`` grows the tenant count and the key space, never the
# offered load, so the overload margin — and the shedding-dominance CI
# gate — is scale-invariant while the user count crosses a million at
# scale 1.

#: Admission policies the shed sweep crosses with QoS mixes; "none"
#: is the in-sweep control every shedding policy must beat.
SHED_POLICIES = ("none", "static-caps", "queue-depth", "feedback")

#: Aggregate offered rate per class, requests per simulated second.
SHED_MIXES = {
    "scan-heavy": {"gold": 150.0, "silver": 300.0, "bestEffort": 1200.0},
    "balanced": {"gold": 150.0, "silver": 750.0, "bestEffort": 900.0},
}

#: Tenants per class at scale=1.0: 1.05M simulated users.
SHED_TENANTS = {"gold": 150_000, "silver": 300_000, "bestEffort": 600_000}

#: Per-class key spaces — fixed, NOT scaled.  The shed story is a
#: fixed-size store shared by ever more users: ``scale`` multiplies
#: tenants (and divides the per-tenant rate), never the store.  A
#: scaled store would grow the resident capacity while the disk's
#: page-insert rate stayed fixed, quietly turning the pollution off at
#: large scale and making the dominance gate scale-dependent.
SHED_KEYS = {"gold": 64, "silver": 128, "bestEffort": 512}

#: Shed cells run squeezed, with and without chaos underneath.
SHED_PRESSURES = ((0.35, False), (0.35, True))

#: Disk-backed system + bursty arrivals: the pressure point where
#: admission control can actually win (bounded backlogs drain in the
#: burst OFF-windows, so shedding buys idle time and an unpolluted
#: resident set; under steady-state overload it could buy neither).
SHED_SYSTEM = "linux"
SHED_ARRIVAL = "bursty"

#: Shed cells run 3x longer than the baseline horizon: the no-shed
#: control's backlog compounds burst over burst, while the feedback
#: policy needs bursts *after* its first-burst reaction window to show
#: its steady state.  A 1s horizon would grade the controllers almost
#: entirely on the one burst no controller can prevent.
SHED_DURATION_X = 3.0

#: Swap-cache pages in the shed cells.  A serving front end keeps
#: readahead minimal for random-access KV traffic: with the default
#: generous buffer, disk readahead quietly refetches a polluted hot
#: set at one fault per neighborhood and hides the very collapse the
#: sweep measures.
SHED_PREFETCH_PAGES = 16


def cells(scale=1.0, seed=0, duration=1.0):
    """Baseline cells (system x arrival x pressure), then the shed
    sweep (QoS mix x pressure x admission policy)."""
    specs = [
        RunSpec.make(
            EXPERIMENT,
            backend=system,
            workload="memcached",
            fit=fit,
            seed=seed,
            scale=scale,
            arrival=arrival,
            chaos=chaos,
            duration=duration,
        )
        for system in SYSTEMS
        for arrival in ARRIVALS
        for fit, chaos in PRESSURES
    ]
    specs.extend(
        RunSpec.make(
            EXPERIMENT,
            backend=SHED_SYSTEM,
            workload="memcached",
            fit=fit,
            seed=seed,
            scale=scale,
            arrival=SHED_ARRIVAL,
            chaos=chaos,
            duration=SHED_DURATION_X * duration,
            policy=policy,
            qos_mix=mix_name,
        )
        for mix_name in sorted(SHED_MIXES)
        for fit, chaos in SHED_PRESSURES
        for policy in SHED_POLICIES
    )
    return specs


def build_schedule(seed, chaos, horizon):
    """The chaos schedule for one (seed, horizon) — system-independent.

    Drawn from a dedicated RNG stream before any cluster exists, so
    every system faces byte-identical faults (the
    :mod:`~repro.experiments.resilience_recovery` idiom).
    """
    from repro.faults.schedule import random_schedule
    from repro.sim.rng import RngStreams

    if not chaos:
        return None
    rng = RngStreams(seed).stream("serve-faults")
    return random_schedule(rng, PEER_NODES, horizon, CHAOS_RATE)


def _mix(spec):
    from repro.serve.qos import default_mix
    from repro.workloads.kv import KV_WORKLOADS

    # Flatter skew than the closed-loop ETC profile, so the touched
    # working set actually exceeds the squeezed resident capacity.
    # Keys and tenants both scale with ``spec.scale`` (matched floors),
    # which keeps the requests-per-key ratio — and therefore the
    # eviction pressure at a given fit — roughly scale-invariant.
    workload = KV_WORKLOADS[spec.workload].with_overrides(
        keys=max(256, int(4096 * spec.scale)), zipf_alpha=0.75
    )
    tenants = max(1200, int(TENANTS_PER_CLASS * spec.scale))
    return default_mix(
        tenants_per_class=tenants,
        arrival_kind=spec.options["arrival"],
        workload=workload,
        per_tenant_rate=PER_TENANT_RATE,
    )


def _shed_mix(spec):
    """The shed-sweep tenant mix: pollution by construction.

    Gold is a tight, skewed hot set that fits the squeezed capacity on
    its own; best-effort is a near-uniform scan over the full store at
    an aggregate rate far past the disk-backed service capacity.  All
    classes burst phase-aligned (the driver's modulation contract), so
    between bursts a *bounded* best-effort backlog drains and the
    server idles — that idle time, and the hot set it preserves, is
    what admission control buys.  Class rates and key spaces are
    absolute (see the sweep constants); only the tenant count scales.
    """
    from repro.serve.qos import QOS_CLASSES, TenantClassSpec
    from repro.workloads.kv import KV_WORKLOADS

    scale = spec.scale
    rates = SHED_MIXES[spec.options["qos_mix"]]
    base = KV_WORKLOADS[spec.workload]
    class_workloads = {
        "gold": base.with_overrides(
            keys=SHED_KEYS["gold"], zipf_alpha=1.05
        ),
        "silver": base.with_overrides(
            keys=SHED_KEYS["silver"], zipf_alpha=0.9
        ),
        "bestEffort": base.with_overrides(
            keys=SHED_KEYS["bestEffort"], zipf_alpha=0.05
        ),
    }
    mix = []
    for name in ("gold", "silver", "bestEffort"):
        tenants = max(1500, int(SHED_TENANTS[name] * scale))
        mix.append(TenantClassSpec(
            qos=QOS_CLASSES[name],
            tenants=tenants,
            per_tenant_rate=rates[name] / tenants,
            arrival_kind=SHED_ARRIVAL,
            workload=class_workloads[name],
        ))
    return mix


def _policy(name):
    """The sweep's concrete policy parameterizations.

    Caps and depth limits are stated against the shed mixes' absolute
    class rates and the disk-backed system's service capacity (a few
    hundred faulting requests per second when squeezed), so they are
    scale-invariant like the rates themselves.
    """
    from repro.serve.admission import make_admission_policy

    if name == "static-caps":
        return make_admission_policy(
            "static-caps", caps={"silver": 150.0, "bestEffort": 50.0}
        )
    if name == "queue-depth":
        return make_admission_policy(
            "queue-depth", limits={"silver": 64, "bestEffort": 16}
        )
    if name == "feedback":
        return make_admission_policy(
            "feedback", high_s=0.02, low_s=0.005, period_s=0.01
        )
    return make_admission_policy("none")


def compute(spec):
    from repro.serve.driver import run_serving_workload

    options = spec.options
    duration = options["duration"]
    schedule = build_schedule(spec.seed, options["chaos"], duration)
    policy_name = options.get("policy")
    if policy_name is None:
        mix = _mix(spec)
        admission = None
        prefetch = None
    else:
        mix = _shed_mix(spec)
        admission = _policy(policy_name)
        prefetch = SHED_PREFETCH_PAGES
    result = run_serving_workload(
        spec.backend,
        mix,
        spec.fit,
        duration=duration,
        seed=spec.seed,
        prefetch_capacity=prefetch,
        fault_schedule=schedule,
        admission=admission,
        fast_path=spec.fast_path,
    )
    payload = result.to_json()
    payload["arrival"] = options["arrival"]
    payload["chaos"] = options["chaos"]
    payload["policy"] = policy_name or "none"
    payload["qos_mix"] = options.get("qos_mix", "default")
    return payload


def report(results):
    rows = []
    for spec, payload in results:
        row = {
            "system": payload["backend"],
            "arrival": payload["arrival"],
            "fit": payload["fit_fraction"],
            "chaos": payload["chaos"],
            "policy": payload.get("policy", "none"),
            "qos_mix": payload.get("qos_mix", "default"),
            "users": payload["users"],
            "offered": payload["offered"],
            "shed": payload.get("shed", 0),
            "completed": payload["completed"],
            "goodput_rps": payload["goodput_rps"],
            "fairness": payload["fairness"],
        }
        for class_row in payload["class_rows"]:
            prefix = class_row["class"]
            row[prefix + "_attainment"] = class_row["attainment"]
            row[prefix + "_envelope"] = class_row["envelope_attainment"]
            row[prefix + "_p99_s"] = class_row["p99_s"]
            row[prefix + "_goodput_rps"] = class_row["goodput_rps"]
            row[prefix + "_shed_fraction"] = class_row.get(
                "shed_fraction", 0.0
            )
        rows.append(row)
    return {"rows": rows}


def run(scale=1.0, seed=0, duration=1.0):
    """The full serving sweep, serially (tests and CLI)."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed,
                      duration=duration)


def render(result):
    return format_table(
        result["rows"],
        title="Open-loop serving - goodput under SLO, 3 QoS classes",
    )


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
