"""Open-loop serving: QoS mix x arrival process x pressure x chaos.

The north-star serving scenario: a hundred-thousand-user tenant mix
(three QoS classes, aggregated per class — see
:mod:`repro.serve.arrivals`) offers load open-loop against each swap
system while memory pressure and, in the chaos cells, a seeded fault
schedule squeeze the backend.  The figure of merit is not raw
throughput but **goodput-under-SLO** per class: a system that serves
best-effort requests while gold requests rot in the queue scores
poorly even at identical completion counts.

Expected shape: under pressure the systems separate as in the paging
experiments — the RDMA systems absorb the squeezed working set at
microsecond tails while the disk-backed system collapses into
sustained queueing (goodput well below offered load, best-effort
starving first).  In every cell gold's *envelope attainment* (the
share of its load completed within the loosest SLO in the mix — see
:meth:`repro.serve.accountant.ClassAccount.within`) is at least
best-effort's: that is the delay-dominance the priority scheduler
guarantees once burst envelopes are phase-aligned, and it is the CI
gate.  Per-class *SLO* attainment is deliberately not gated
cross-class — a 25 ms backlog violates gold's 20 ms SLO but not
best-effort's 200 ms one, so classes with SLOs of different widths
can rank either way without any scheduling fault.  Chaos (peer
crashes and link flaps) stretches the remote-only system's tails,
cannot touch the disk-only system, and often leaves FastSwap
byte-identical — its local shared-memory tier (the paper's tier-1)
absorbs the overflow before any remote slab is involved.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.metrics.reporting import format_table

EXPERIMENT = "open_loop_serving"

SYSTEMS = ("fastswap", "infiniswap", "linux")
ARRIVALS = ("poisson", "bursty", "diurnal")

#: Peer memory servers of the measured node in the default testbed.
PEER_NODES = ("node1", "node2", "node3")

#: (fit_fraction, chaos) pressure points: comfortable, squeezed, and
#: squeezed with faults underneath.
PRESSURES = ((0.7, False), (0.35, False), (0.35, True))

#: Tenants per QoS class at scale=1.0 (three classes -> 120k users).
TENANTS_PER_CLASS = 40_000

#: One tenant's request rate; offered load is aggregated per class
#: (40k tenants x 0.15 rps = 6000 requests/s per class at scale 1).
#: Chosen so the squeezed cells push the disk-backed system past its
#: service capacity (sustained queueing), while the RDMA systems keep
#: an order of magnitude of headroom.
PER_TENANT_RATE = 0.15

#: Expected random fault events over the horizon in chaos cells.
CHAOS_RATE = 4.0


def cells(scale=1.0, seed=0, duration=1.0):
    """One cell per (system, arrival process, pressure point)."""
    return [
        RunSpec.make(
            EXPERIMENT,
            backend=system,
            workload="memcached",
            fit=fit,
            seed=seed,
            scale=scale,
            arrival=arrival,
            chaos=chaos,
            duration=duration,
        )
        for system in SYSTEMS
        for arrival in ARRIVALS
        for fit, chaos in PRESSURES
    ]


def build_schedule(seed, chaos, horizon):
    """The chaos schedule for one (seed, horizon) — system-independent.

    Drawn from a dedicated RNG stream before any cluster exists, so
    every system faces byte-identical faults (the
    :mod:`~repro.experiments.resilience_recovery` idiom).
    """
    from repro.faults.schedule import random_schedule
    from repro.sim.rng import RngStreams

    if not chaos:
        return None
    rng = RngStreams(seed).stream("serve-faults")
    return random_schedule(rng, PEER_NODES, horizon, CHAOS_RATE)


def _mix(spec):
    from repro.serve.qos import default_mix
    from repro.workloads.kv import KV_WORKLOADS

    # Flatter skew than the closed-loop ETC profile, so the touched
    # working set actually exceeds the squeezed resident capacity.
    # Keys and tenants both scale with ``spec.scale`` (matched floors),
    # which keeps the requests-per-key ratio — and therefore the
    # eviction pressure at a given fit — roughly scale-invariant.
    workload = KV_WORKLOADS[spec.workload].with_overrides(
        keys=max(256, int(4096 * spec.scale)), zipf_alpha=0.75
    )
    tenants = max(1200, int(TENANTS_PER_CLASS * spec.scale))
    return default_mix(
        tenants_per_class=tenants,
        arrival_kind=spec.options["arrival"],
        workload=workload,
        per_tenant_rate=PER_TENANT_RATE,
    )


def compute(spec):
    from repro.serve.driver import run_serving_workload

    options = spec.options
    duration = options["duration"]
    schedule = build_schedule(spec.seed, options["chaos"], duration)
    result = run_serving_workload(
        spec.backend,
        _mix(spec),
        spec.fit,
        duration=duration,
        seed=spec.seed,
        fault_schedule=schedule,
        fast_path=spec.fast_path,
    )
    payload = result.to_json()
    payload["arrival"] = options["arrival"]
    payload["chaos"] = options["chaos"]
    return payload


def report(results):
    rows = []
    for spec, payload in results:
        row = {
            "system": payload["backend"],
            "arrival": payload["arrival"],
            "fit": payload["fit_fraction"],
            "chaos": payload["chaos"],
            "users": payload["users"],
            "offered": payload["offered"],
            "goodput_rps": payload["goodput_rps"],
            "fairness": payload["fairness"],
        }
        for class_row in payload["class_rows"]:
            prefix = class_row["class"]
            row[prefix + "_attainment"] = class_row["attainment"]
            row[prefix + "_envelope"] = class_row["envelope_attainment"]
            row[prefix + "_p99_s"] = class_row["p99_s"]
        rows.append(row)
    return {"rows": rows}


def run(scale=1.0, seed=0, duration=1.0):
    """The full serving sweep, serially (tests and CLI)."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed,
                      duration=duration)


def render(result):
    return format_table(
        result["rows"],
        title="Open-loop serving - goodput under SLO, 3 QoS classes",
    )


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
