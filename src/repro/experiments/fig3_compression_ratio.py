"""Figure 3: compression ratio for 10 workloads, FastSwap vs zswap.

FastSwap stores compressed pages at 2 granularities (2 K/4 K) or 4
granularities (512/1 K/2 K/4 K); zswap's zbud allocator pairs at most
two compressed pages per physical page.  The figure reports the
*effective* ratio — raw bytes over bytes actually charged — for each
application's compressibility profile.

Expected shape: 4-granularity >= 2-granularity >= zswap for every
workload, with the gap largest for highly compressible (graph) data.
"""

from repro.mem.compression import GranularityStore, ZbudStore
from repro.mem.page import make_pages
from repro.metrics.reporting import format_table
from repro.sim import RngStreams
from repro.workloads.catalog import iter_applications


def run(scale=1.0, seed=0, pages_per_app=4000):
    """Effective compression ratios per application and store."""
    count = max(200, int(pages_per_app * scale))
    streams = RngStreams(seed)
    rows = []
    for app in iter_applications():
        profile = app.workload().compressibility
        rng = streams.spawn(app.name).stream("pages")
        pages = make_pages(count, compressibility_sampler=profile.sampler(rng))
        zswap = ZbudStore()
        two = GranularityStore([2048, 4096])
        four = GranularityStore([512, 1024, 2048, 4096])
        for page in pages:
            zswap.store(page)
            two.store(page)
            four.store(page)
        rows.append(
            {
                "workload": app.name,
                "zswap": zswap.effective_ratio(),
                "fastswap_2gran": two.effective_ratio(),
                "fastswap_4gran": four.effective_ratio(),
            }
        )
    return {"rows": rows}


def main():
    result = run()
    print(format_table(result["rows"],
                       title="Figure 3 — effective compression ratio"))
    return result


if __name__ == "__main__":
    main()
