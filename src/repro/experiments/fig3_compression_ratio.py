"""Figure 3: compression ratio for 10 workloads, FastSwap vs zswap.

FastSwap stores compressed pages at 2 granularities (2 K/4 K) or 4
granularities (512/1 K/2 K/4 K); zswap's zbud allocator pairs at most
two compressed pages per physical page.  The figure reports the
*effective* ratio — raw bytes over bytes actually charged — for each
application's compressibility profile.

Expected shape: 4-granularity >= 2-granularity >= zswap for every
workload, with the gap largest for highly compressible (graph) data.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.metrics.reporting import format_table

EXPERIMENT = "fig3"


def cells(scale=1.0, seed=0, pages_per_app=4000):
    """One cell per application in catalog order."""
    from repro.workloads.catalog import iter_applications

    count = max(200, int(pages_per_app * scale))
    return [
        RunSpec.make(EXPERIMENT, workload=app.name, seed=seed, scale=scale,
                     pages=count)
        for app in iter_applications()
    ]


def compute(spec):
    from repro.mem.compression import GranularityStore, ZbudStore
    from repro.mem.page import make_pages
    from repro.sim import RngStreams
    from repro.workloads.catalog import iter_applications

    app = next(a for a in iter_applications() if a.name == spec.workload)
    profile = app.workload().compressibility
    rng = RngStreams(spec.seed).spawn(app.name).stream("pages")
    pages = make_pages(
        spec.options["pages"], compressibility_sampler=profile.sampler(rng)
    )
    zswap = ZbudStore()
    two = GranularityStore([2048, 4096])
    four = GranularityStore([512, 1024, 2048, 4096])
    for page in pages:
        zswap.store(page)
        two.store(page)
        four.store(page)
    return {
        "workload": app.name,
        "zswap": zswap.effective_ratio(),
        "fastswap_2gran": two.effective_ratio(),
        "fastswap_4gran": four.effective_ratio(),
    }


def report(results):
    return {"rows": [payload for _spec, payload in results]}


def run(scale=1.0, seed=0, pages_per_app=4000):
    """Effective compression ratios per application and store."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed,
                      pages_per_app=pages_per_app)


def render(result):
    return format_table(result["rows"],
                        title="Figure 3 — effective compression ratio")


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
