"""Figure 5: impact of disaggregated-memory compression on performance.

The same workloads run with compression enabled and disabled, on a
cluster whose disaggregated memory pools are sized so that capacity
*binds*: compressed working sets fit in the fast tiers, raw ones
overflow toward disk.  That is the paper's point — compression
multiplies the effective capacity of every pool, not just the wire.

Expected shape: compression wins on every workload, with the margin
tracking the workload's compressibility.
"""

from repro.experiments.runner import default_cluster_config, run_paging_workload
from repro.metrics.reporting import format_table
from repro.swap.fastswap import FastSwapConfig
from repro.workloads.ml import ML_WORKLOADS

WORKLOADS = ("pagerank", "logistic_regression", "kmeans", "svm",
             "connected_components")


def _tight_cluster(seed):
    """Pools sized so raw pages overflow but compressed ones fit."""
    return default_cluster_config(
        seed=seed,
        donation_fraction=0.02,
        receive_pool_slabs=1,
        send_pool_slabs=2,
    )


def run(scale=1.0, seed=0):
    """Completion time with/without compression per workload."""
    rows = []
    for name in WORKLOADS:
        # The working set stays fixed (capacity binding is the whole
        # experiment); ``scale`` only trims iterations.
        spec = ML_WORKLOADS[name].with_overrides(
            pages=2048, iterations=max(2, round(3 * scale))
        )
        on = run_paging_workload(
            "fastswap",
            spec,
            0.5,
            seed=seed,
            cluster_config=_tight_cluster(seed),
            fastswap_config=FastSwapConfig(compression=True,
                                           slabs_per_target=1),
        )
        off = run_paging_workload(
            "fastswap",
            spec,
            0.5,
            seed=seed,
            cluster_config=_tight_cluster(seed),
            fastswap_config=FastSwapConfig(compression=False,
                                           slabs_per_target=1),
        )
        rows.append(
            {
                "workload": name,
                "compressed_s": on.completion_time,
                "uncompressed_s": off.completion_time,
                "speedup": off.completion_time / on.completion_time,
            }
        )
    return {"rows": rows}


def main():
    result = run()
    print(
        format_table(
            result["rows"],
            title="Figure 5 — compression on/off application performance",
        )
    )
    return result


if __name__ == "__main__":
    main()
