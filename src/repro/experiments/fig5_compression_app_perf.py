"""Figure 5: impact of disaggregated-memory compression on performance.

The same workloads run with compression enabled and disabled, on a
cluster whose disaggregated memory pools are sized so that capacity
*binds*: compressed working sets fit in the fast tiers, raw ones
overflow toward disk.  That is the paper's point — compression
multiplies the effective capacity of every pool, not just the wire.

Expected shape: compression wins on every workload, with the margin
tracking the workload's compressibility.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.experiments.runner import default_cluster_config, run_paging_workload
from repro.metrics.reporting import format_table

EXPERIMENT = "fig5"
WORKLOADS = ("pagerank", "logistic_regression", "kmeans", "svm",
             "connected_components")


def _tight_cluster(seed):
    """Pools sized so raw pages overflow but compressed ones fit."""
    return default_cluster_config(
        seed=seed,
        donation_fraction=0.02,
        receive_pool_slabs=1,
        send_pool_slabs=2,
    )


def cells(scale=1.0, seed=0):
    """One cell per (workload, compression on/off)."""
    return [
        RunSpec.make(EXPERIMENT, backend="fastswap", workload=name, fit=0.5,
                     seed=seed, scale=scale, compression=compression)
        for name in WORKLOADS
        for compression in (True, False)
    ]


def compute(spec):
    from repro.swap.fastswap import FastSwapConfig
    from repro.workloads.ml import ML_WORKLOADS

    # The working set stays fixed (capacity binding is the whole
    # experiment); ``scale`` only trims iterations.
    workload = ML_WORKLOADS[spec.workload].with_overrides(
        pages=2048, iterations=max(2, round(3 * spec.scale))
    )
    result = run_paging_workload(
        spec.backend,
        workload,
        spec.fit,
        seed=spec.seed,
        cluster_config=_tight_cluster(spec.seed),
        fastswap_config=FastSwapConfig(
            compression=spec.options["compression"], slabs_per_target=1
        ),
        fast_path=spec.fast_path,
    )
    return result.to_json()


def report(results):
    times = {
        (spec.workload, spec.options["compression"]):
            payload["completion_time"]
        for spec, payload in results
    }
    rows = []
    for name in WORKLOADS:
        on, off = times[(name, True)], times[(name, False)]
        rows.append(
            {
                "workload": name,
                "compressed_s": on,
                "uncompressed_s": off,
                "speedup": off / on,
            }
        )
    return {"rows": rows}


def run(scale=1.0, seed=0):
    """Completion time with/without compression per workload."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed)


def render(result):
    return format_table(
        result["rows"],
        title="Figure 5 — compression on/off application performance",
    )


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
