"""Ablations over the design choices of paper Section IV.

The paper enumerates alternatives without picking winners; these
experiments quantify each trade on the simulated cluster:

* ``run_placement`` — random vs round-robin vs weighted-RR vs
  power-of-two-choices: memory imbalance across receive pools (§IV-E);
* ``run_replication`` — replication factor 1 vs 2 vs 3: write cost vs
  read availability under node crashes (§IV-D);
* ``run_batching`` — Accelio message size x window size for a bulk
  partition transfer (§IV-H's "worth experimenting" sweep);
* ``run_groups`` — group size vs per-node memory-map metadata and
  remote capacity reachable by one node (§IV-C);
* ``run_donation`` — shared-pool donation fraction x% vs completion
  time (§IV-F: "maximizing the shared memory pool provides higher
  throughput and lower latency").

Each ablation is declared as independent :class:`RunSpec` cells (one
per policy / factor / grid point), so the engine can fan the whole
section out in parallel; the ``run_*`` helpers remain as serial
conveniences over the same cells.
"""

import sys

from repro.core.cluster import DisaggregatedCluster
from repro.core.config import ClusterConfig
from repro.core.memory_map import map_overhead_bytes
from repro.experiments.engine import RunSpec, run_serial
from repro.experiments.runner import default_cluster_config, run_paging_workload
from repro.hw.latency import GiB, KiB, MiB, TiB
from repro.net.rpc import RpcEndpoint
from repro.swap.fastswap import FastSwapConfig
from repro.workloads.ml import ML_WORKLOADS

EXPERIMENT = "ablations"
PLACEMENT_POLICIES = ("random", "round_robin", "weighted_round_robin",
                      "power_of_two")
#: Parts of the combined sweep, in report order.
PARTS = ("placement", "replication", "batching", "groups", "donation",
         "ballooning", "tier_cascade")
_TITLES = {
    "placement": "Ablation — placement",
    "replication": "Ablation — replication",
    "batching": "Ablation — batching",
    "groups": "Ablation — groups",
    "donation": "Ablation — donation",
    "ballooning": "Ablation — ballooning",
    "tier_cascade": "Ablation — XMemPod SSD cascade",
}


def _cell(scale, seed, part, **overrides):
    return RunSpec.make(EXPERIMENT, seed=seed, scale=scale, part=part,
                        **overrides)


# --- placement (§IV-E) -------------------------------------------------

def _placement_cells(scale, seed, entries=400):
    entries = max(50, int(entries * scale))
    return [
        _cell(scale, seed, "placement", policy=policy, entries=entries)
        for policy in PLACEMENT_POLICIES
    ]


def _compute_placement(spec):
    options = spec.options
    entries = options["entries"]
    cluster = DisaggregatedCluster.build(
        ClusterConfig(
            num_nodes=8,
            servers_per_node=1,
            server_memory_bytes=16 * MiB,
            donation_fraction=0.0,  # force every put remote
            receive_pool_slabs=entries,  # ample capacity everywhere
            replication_factor=1,
            placement_policy=options["policy"],
            seed=spec.seed,
        )
    )
    server = cluster.virtual_servers[0]

    def workload():
        for i in range(entries):
            yield from server.ldmc.put(("p", i), 256 * KiB)
        return True

    cluster.run_process(workload())
    hosted = [node.rdms.hosted_bytes for node in cluster.nodes()
              if node.node_id != "node0"]
    mean = sum(hosted) / len(hosted)
    return {
        "row": {
            "policy": options["policy"],
            "max_hosted_mb": max(hosted) / MiB,
            "min_hosted_mb": min(hosted) / MiB,
            "imbalance": (max(hosted) - min(hosted)) / mean if mean else 0.0,
        }
    }


def run_placement(scale=1.0, seed=0, entries=400):
    """Receive-pool load imbalance per placement policy."""
    return _run_part(_placement_cells(scale, seed, entries=entries))


# --- replication (§IV-D) -----------------------------------------------

def _replication_cells(scale, seed, entries=150):
    entries = max(30, int(entries * scale))
    return [
        _cell(scale, seed, "replication", factor=factor, entries=entries)
        for factor in (1, 2, 3)
    ]


def _compute_replication(spec):
    options = spec.options
    entries = options["entries"]
    cluster = DisaggregatedCluster.build(
        ClusterConfig(
            num_nodes=6,
            servers_per_node=1,
            server_memory_bytes=16 * MiB,
            donation_fraction=0.0,
            receive_pool_slabs=3 * entries,
            replication_factor=options["factor"],
            seed=spec.seed,
        )
    )
    server = cluster.virtual_servers[0]

    def put_all():
        start = cluster.env.now
        for i in range(entries):
            yield from server.ldmc.put(("r", i), 256 * KiB)
        return cluster.env.now - start

    write_time = cluster.run_process(put_all())
    # Crash one replica holder and count still-readable entries.
    cluster.crash_node("node1")

    def read_all():
        alive = 0
        for i in range(entries):
            try:
                yield from server.ldmc.get(("r", i))
                alive += 1
            except Exception:
                continue
        return alive

    readable = cluster.run_process(read_all())
    return {
        "row": {
            "replicas": options["factor"],
            "write_time_s": write_time,
            "network_mb": cluster.fabric.total_bytes / MiB,
            "readable_after_crash": readable,
            "total_entries": entries,
        }
    }


def run_replication(scale=1.0, seed=0, entries=150):
    """Write cost and post-crash availability per replication factor."""
    return _run_part(_replication_cells(scale, seed, entries=entries))


# --- batching (§IV-H) --------------------------------------------------

def _batching_cells(scale, seed, transfer_bytes=8 * MiB):
    transfer_bytes = max(1 * MiB, int(transfer_bytes * scale))
    return [
        _cell(scale, seed, "batching", message_kib=message_kib,
              window=window, transfer_bytes=transfer_bytes)
        for message_kib in (4, 8, 64, 256)
        for window in (1, 4, 16, 64)
    ]


def _compute_batching(spec):
    from repro.net.fabric import Fabric
    from repro.net.rdma import RdmaDevice
    from repro.sim import Environment

    options = spec.options
    transfer_bytes = options["transfer_bytes"]
    env = Environment()
    fabric = Fabric(env)
    a = RdmaDevice(env, fabric, "a")
    b = RdmaDevice(env, fabric, "b")
    endpoint = RpcEndpoint(a, message_bytes=options["message_kib"] * KiB,
                           window=options["window"])

    def move():
        qp = yield from a.connect(b)
        start = env.now
        yield from endpoint.transfer(qp, transfer_bytes)
        return env.now - start

    elapsed = env.run(until=env.process(move()))
    return {
        "row": {
            "message_kib": options["message_kib"],
            "window": options["window"],
            "transfer_s": elapsed,
            "gbytes_per_s": transfer_bytes / elapsed / GiB,
        }
    }


def run_batching(scale=1.0, seed=0, transfer_bytes=8 * MiB):
    """Bulk-transfer time across message sizes and window sizes."""
    return _run_part(
        _batching_cells(scale, seed, transfer_bytes=transfer_bytes)
    )


# --- groups (§IV-C) ----------------------------------------------------

def _groups_cells(scale, seed):
    return [
        _cell(scale, seed, "groups", group_size=group_size)
        for group_size in (0, 2, 4, 8)
    ]


def _compute_groups(spec):
    num_nodes = 16
    group_size = spec.options["group_size"]
    cluster = DisaggregatedCluster.build(
        ClusterConfig(
            num_nodes=num_nodes,
            servers_per_node=1,
            server_memory_bytes=8 * MiB,
            group_size=group_size,
            receive_pool_slabs=8,
            seed=spec.seed,
        )
    )
    node = cluster.nodes()[0]
    reachable = sum(
        cluster.free_receive_bytes(peer)
        for peer in cluster.peers_of(node.node_id)
    )
    effective_group = len(cluster.groups.group_of(node.node_id))
    # §IV-C arithmetic at datacenter scale: the memory map a node
    # needs to track its group's disaggregated memory.
    per_node_cluster_share = 2 * TiB / num_nodes
    map_bytes = map_overhead_bytes(per_node_cluster_share * effective_group)
    return {
        "row": {
            "group_size": group_size or num_nodes,
            "reachable_remote_mb": reachable / MiB,
            "map_overhead_gb_at_2tb": map_bytes / GiB,
        }
    }


def run_groups(scale=1.0, seed=0):
    """Group size: metadata footprint vs reachable remote capacity."""
    return _run_part(_groups_cells(scale, seed))


# --- donation (§IV-F) --------------------------------------------------

def _donation_cells(scale, seed):
    return [
        _cell(scale, seed, "donation", fraction=fraction)
        for fraction in (0.0, 0.1, 0.2, 0.3, 0.4)
    ]


def _compute_donation(spec):
    fraction = spec.options["fraction"]
    workload = ML_WORKLOADS["logistic_regression"].with_overrides(
        pages=max(256, int(2048 * spec.scale)), iterations=3
    )
    result = run_paging_workload(
        "fastswap",
        workload,
        0.5,
        seed=spec.seed,
        cluster_config=default_cluster_config(
            seed=spec.seed, donation_fraction=fraction
        ),
        fast_path=spec.fast_path,
    )
    return {
        "row": {
            "donation_fraction": fraction,
            "completion_s": result.completion_time,
            "sm_share": (
                result.backend_stats.get("sm_puts", 0)
                / max(1, result.stats["swap_outs"])
            ),
        },
        "run": result.to_json(),
    }


def run_donation(scale=1.0, seed=0):
    """Shared-pool donation fraction vs paging completion time."""
    return _run_part(_donation_cells(scale, seed))


# --- ballooning (§IV-F policy 2) ---------------------------------------

def _ballooning_cells(scale, seed):
    return [
        _cell(scale, seed, "ballooning", adaptive=adaptive)
        for adaptive in (False, True)
    ]


def _compute_ballooning(spec):
    """§IV-F policy (2): balloon DRAM to a server that keeps paging.

    A FastSwap workload runs at an undersized resident set; the
    adaptive variant monitors the fault rate and reclaims the server's
    shared-pool donation as extra resident frames (the node manager's
    ballooning recommendation applied).  Expected shape: adaptive
    completes faster and ends with a larger resident capacity.
    """
    from repro.hw.latency import PAGE_SIZE
    from repro.mem.page import make_pages
    from repro.swap.base import VirtualMemory
    from repro.swap.factory import make_swap_backend

    adaptive = spec.options["adaptive"]
    workload = ML_WORKLOADS["logistic_regression"].with_overrides(
        pages=max(256, int(2048 * spec.scale)), iterations=3
    )
    config = default_cluster_config(seed=spec.seed, donation_fraction=0.4)
    cluster = DisaggregatedCluster.build(config)
    node = cluster.nodes()[0]
    server = node.servers[0]
    backend = make_swap_backend(
        "fastswap", node, cluster, rng=cluster.rng.stream("b")
    )
    pages = make_pages(
        workload.pages,
        compressibility_sampler=workload.compressibility.sampler(
            cluster.rng.stream("pages")
        ),
    )
    mmu = VirtualMemory(
        cluster.env, pages, max(1, workload.pages // 2), backend,
        cpu=config.calibration.cpu,
        compute_per_access=workload.compute_per_access,
    )
    backend.bind_page_table(mmu.pages, mmu.stats)

    def monitor():
        faults_seen = 0
        while True:
            yield cluster.env.timeout(0.005)
            recent = mmu.stats.major_faults - faults_seen
            faults_seen = mmu.stats.major_faults
            if recent > 25:
                granted = server.balloon(128 * PAGE_SIZE)
                if granted:
                    mmu.grow_capacity(granted // PAGE_SIZE)

    def job():
        yield from backend.setup()
        mmu.stats.start_time = cluster.env.now
        for page_id, is_write in workload.iter_accesses(cluster.rng.stream("t")):
            yield from mmu.access(page_id, write=is_write)
        yield from mmu.flush()
        mmu.stats.end_time = cluster.env.now

    if adaptive:
        cluster.env.process(monitor(), name="balloon-monitor")
    cluster.run_process(job())
    return {
        "row": {
            "ballooning": "adaptive" if adaptive else "off",
            "completion_s": mmu.stats.completion_time,
            "final_capacity_pages": mmu.capacity_pages,
            "major_faults": mmu.stats.major_faults,
        }
    }


def run_ballooning(scale=1.0, seed=0):
    """Adaptive ballooning vs a fixed resident set."""
    return _run_part(_ballooning_cells(scale, seed))


# --- tier cascade (paper ref. [36]) ------------------------------------

def _tier_cascade_cells(scale, seed):
    return [
        RunSpec.make(EXPERIMENT, backend=backend,
                     workload="logistic_regression", fit=0.5, seed=seed,
                     scale=scale, part="tier_cascade")
        for backend in ("fastswap", "xmempod")
    ]


def _compute_tier_cascade(spec):
    """XMemPod's SSD tier (paper ref. [36]) vs plain FastSwap.

    With no remote capacity available, FastSwap's overflow cascades to
    the HDD while XMemPod interposes an SSD tier.  Expected shape:
    the SSD cascade is several times faster under overflow and
    identical when nothing overflows.
    """
    backend = spec.backend
    workload = ML_WORKLOADS["logistic_regression"].with_overrides(
        pages=2048, iterations=max(2, round(3 * spec.scale))
    )
    result = run_paging_workload(
        backend,
        workload,
        spec.fit,
        seed=spec.seed,
        # Tiny pool + no remote slabs: the storage cascade absorbs
        # all overflow.
        cluster_config=default_cluster_config(
            seed=spec.seed, donation_fraction=0.02, receive_pool_slabs=1
        ),
        fastswap_config=FastSwapConfig(slabs_per_target=0),
        fast_path=spec.fast_path,
    )
    return {
        "row": {
            "backend": backend,
            "completion_s": result.completion_time,
            "ssd_reads": result.backend_stats.get("ssd_reads", 0),
            "disk_reads": result.backend_stats.get("disk_reads", 0),
        },
        "run": result.to_json(),
    }


def run_tier_cascade(scale=1.0, seed=0):
    """XMemPod's SSD cascade vs plain FastSwap under overflow."""
    return _run_part(_tier_cascade_cells(scale, seed))


# --- oversubscription (not part of the combined sweep) -----------------

def run_oversubscription(scale=1.0, seed=0, tenants=8):
    """Fabric oversubscription vs remote-paging makespan.

    The paper's network-requirements citation ([27], Gao et al. OSDI'16)
    asks what disaggregation demands of the fabric; here every node
    pages remotely at once while the switch core admits fewer and fewer
    concurrent transfers.  Expected shape: FS-RDMA makespan grows as
    the core narrows; the node-local FS-SM variant is immune.
    """
    spec = ML_WORKLOADS["logistic_regression"].with_overrides(
        pages=max(256, int(1024 * scale)), iterations=2
    )
    rows = []
    for core in (0, 2, 1):
        for label, fraction in (("fs_rdma", 0.0), ("fs_sm", 1.0)):
            result = _run_paging_tenants(
                spec, tenants, seed, core_concurrency=core,
                sm_fraction=fraction,
            )
            rows.append(
                {
                    "core_concurrency": core or "unlimited",
                    "variant": label,
                    "makespan_s": result,
                }
            )
    return {"rows": rows}


def _run_paging_tenants(spec, tenants, seed, core_concurrency, sm_fraction):
    from repro.mem.page import make_pages
    from repro.swap.base import VirtualMemory
    from repro.swap.fastswap import FastSwap

    config = default_cluster_config(
        seed=seed,
        num_nodes=max(4, tenants),
        fabric_core_concurrency=core_concurrency,
    )
    cluster = DisaggregatedCluster.build(config)
    jobs, mmus = [], []
    for index in range(tenants):
        node = cluster.nodes()[index]
        # Wire-bound configuration: raw pages, one read per fault, and
        # modest slab reservations so every tenant gets remote areas.
        backend = FastSwap(
            node, cluster,
            config=FastSwapConfig(
                sm_fraction=sm_fraction, compression=False, pbs=False,
                slabs_per_target=4,
            ),
        )
        pages = make_pages(
            spec.pages,
            compressibility_sampler=spec.compressibility.sampler(
                cluster.rng.stream("pages{}".format(index))
            ),
        )
        mmu = VirtualMemory(
            cluster.env, pages, max(1, spec.pages // 2), backend,
            cpu=config.calibration.cpu,
            compute_per_access=spec.compute_per_access,
        )
        backend.bind_page_table(mmu.pages, mmu.stats)
        mmus.append(mmu)

        def job(backend=backend, mmu=mmu, index=index):
            yield from backend.setup()
            mmu.stats.start_time = cluster.env.now
            for page_id, is_write in spec.iter_accesses(
                cluster.rng.stream("trace{}".format(index))
            ):
                yield from mmu.access(page_id, write=is_write)
            yield from mmu.flush()
            mmu.stats.end_time = cluster.env.now

        jobs.append(cluster.env.process(job()))
    cluster.env.run(until=cluster.env.all_of(jobs))
    return max(mmu.stats.completion_time for mmu in mmus)


# --- declarative contract ----------------------------------------------

_PART_CELLS = {
    "placement": _placement_cells,
    "replication": _replication_cells,
    "batching": _batching_cells,
    "groups": _groups_cells,
    "donation": _donation_cells,
    "ballooning": _ballooning_cells,
    "tier_cascade": _tier_cascade_cells,
}
_PART_COMPUTE = {
    "placement": _compute_placement,
    "replication": _compute_replication,
    "batching": _compute_batching,
    "groups": _compute_groups,
    "donation": _compute_donation,
    "ballooning": _compute_ballooning,
    "tier_cascade": _compute_tier_cascade,
}


def cells(scale=1.0, seed=0):
    """Every ablation cell, grouped by part in report order."""
    specs = []
    for part in PARTS:
        specs.extend(_PART_CELLS[part](scale, seed))
    return specs


def compute(spec):
    return _PART_COMPUTE[spec.options["part"]](spec)


def _run_part(specs):
    """Serial rows for one part's cells (the ``run_*`` helpers)."""
    return {"rows": [compute(spec)["row"] for spec in specs]}


def report(results):
    sections = {}
    for spec, payload in results:
        part = spec.options["part"]
        sections.setdefault(part, []).append(payload["row"])
    rows = [
        dict([("ablation", part)] + list(row.items()))
        for part in PARTS
        for row in sections.get(part, [])
    ]
    return {"rows": rows, "sections": sections}


def run(scale=1.0, seed=0):
    """All Section IV ablations; ``sections`` maps part -> rows."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed)


def render(result):
    from repro.metrics.reporting import format_table

    lines = []
    for part in PARTS:
        rows = result["sections"].get(part)
        if not rows:
            continue
        if lines:
            lines.append("")
        lines.append(format_table(rows, title=_TITLES[part]))
    return "\n".join(lines)


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
