"""Figure 7: ML workload completion time — FastSwap / Infiniswap / Linux.

Five workloads (PageRank, LR, TunkRank, K-Means, SVM) at the 75% and
50% configurations.  The paper reports: at 75%, FastSwap improves over
Linux 24x on average (up to 83x) and over Infiniswap 2.3x on average;
at 50%, 45x on average over Linux (up to 85x) and 2.6x on average
(4.4x best case) over Infiniswap.

Expected shape: FastSwap < Infiniswap << Linux everywhere; speedups
larger at 50% than at 75%.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.experiments.runner import run_paging_workload
from repro.metrics.reporting import format_table

EXPERIMENT = "fig7"
WORKLOADS = ("pagerank", "logistic_regression", "tunkrank", "kmeans", "svm")
SYSTEMS = ("fastswap", "infiniswap", "linux")
CONFIGS = (0.75, 0.5)


def cells(scale=1.0, seed=0):
    """One cell per (workload, configuration, system)."""
    return [
        RunSpec.make(EXPERIMENT, backend=system, workload=name, fit=fit,
                     seed=seed, scale=scale)
        for name in WORKLOADS
        for fit in CONFIGS
        for system in SYSTEMS
    ]


def compute(spec):
    from repro.workloads.ml import ML_WORKLOADS

    workload = ML_WORKLOADS[spec.workload].with_overrides(
        pages=max(256, int(2048 * spec.scale)), iterations=3
    )
    return run_paging_workload(
        spec.backend, workload, spec.fit, seed=spec.seed,
        fast_path=spec.fast_path,
    ).to_json()


def report(results):
    """Completion times and speedups per (workload, config)."""
    times = {
        (spec.workload, spec.fit, spec.backend): payload["completion_time"]
        for spec, payload in results
    }
    rows = []
    for name in WORKLOADS:
        for fit in CONFIGS:
            by_system = {
                system: times[(name, fit, system)] for system in SYSTEMS
            }
            rows.append(
                {
                    "workload": name,
                    "fit": fit,
                    "fastswap_s": by_system["fastswap"],
                    "infiniswap_s": by_system["infiniswap"],
                    "linux_s": by_system["linux"],
                    "speedup_vs_linux": (
                        by_system["linux"] / by_system["fastswap"]
                    ),
                    "speedup_vs_infiniswap": (
                        by_system["infiniswap"] / by_system["fastswap"]
                    ),
                }
            )
    summary = {}
    for fit in CONFIGS:
        fit_rows = [row for row in rows if row["fit"] == fit]
        summary[fit] = {
            "avg_speedup_vs_linux": sum(
                row["speedup_vs_linux"] for row in fit_rows
            ) / len(fit_rows),
            "max_speedup_vs_linux": max(
                row["speedup_vs_linux"] for row in fit_rows
            ),
            "avg_speedup_vs_infiniswap": sum(
                row["speedup_vs_infiniswap"] for row in fit_rows
            ) / len(fit_rows),
            "max_speedup_vs_infiniswap": max(
                row["speedup_vs_infiniswap"] for row in fit_rows
            ),
        }
    return {"rows": rows, "summary": summary}


def run(scale=1.0, seed=0):
    """Completion times and speedups per (workload, config)."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed)


def render(result):
    lines = [
        format_table(
            result["rows"],
            title="Figure 7 — ML workload completion time",
        )
    ]
    for fit, stats in result["summary"].items():
        lines.append(
            "fit={:.0%}: vs Linux avg {:.1f}x max {:.1f}x; "
            "vs Infiniswap avg {:.2f}x max {:.2f}x".format(
                float(fit),
                stats["avg_speedup_vs_linux"],
                stats["max_speedup_vs_linux"],
                stats["avg_speedup_vs_infiniswap"],
                stats["max_speedup_vs_infiniswap"],
            )
        )
    return "\n".join(lines)


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
