"""Figure 7: ML workload completion time — FastSwap / Infiniswap / Linux.

Five workloads (PageRank, LR, TunkRank, K-Means, SVM) at the 75% and
50% configurations.  The paper reports: at 75%, FastSwap improves over
Linux 24x on average (up to 83x) and over Infiniswap 2.3x on average;
at 50%, 45x on average over Linux (up to 85x) and 2.6x on average
(4.4x best case) over Infiniswap.

Expected shape: FastSwap < Infiniswap << Linux everywhere; speedups
larger at 50% than at 75%.
"""

from repro.experiments.runner import run_paging_workload
from repro.metrics.reporting import format_table
from repro.workloads.ml import ML_WORKLOADS

WORKLOADS = ("pagerank", "logistic_regression", "tunkrank", "kmeans", "svm")
SYSTEMS = ("fastswap", "infiniswap", "linux")
CONFIGS = (0.75, 0.5)


def run(scale=1.0, seed=0):
    """Completion times and speedups per (workload, config)."""
    rows = []
    for name in WORKLOADS:
        spec = ML_WORKLOADS[name].with_overrides(
            pages=max(256, int(2048 * scale)), iterations=3
        )
        for fit in CONFIGS:
            times = {
                system: run_paging_workload(
                    system, spec, fit, seed=seed
                ).completion_time
                for system in SYSTEMS
            }
            rows.append(
                {
                    "workload": name,
                    "fit": fit,
                    "fastswap_s": times["fastswap"],
                    "infiniswap_s": times["infiniswap"],
                    "linux_s": times["linux"],
                    "speedup_vs_linux": times["linux"] / times["fastswap"],
                    "speedup_vs_infiniswap": (
                        times["infiniswap"] / times["fastswap"]
                    ),
                }
            )
    summary = {}
    for fit in CONFIGS:
        fit_rows = [row for row in rows if row["fit"] == fit]
        summary[fit] = {
            "avg_speedup_vs_linux": sum(
                row["speedup_vs_linux"] for row in fit_rows
            ) / len(fit_rows),
            "max_speedup_vs_linux": max(
                row["speedup_vs_linux"] for row in fit_rows
            ),
            "avg_speedup_vs_infiniswap": sum(
                row["speedup_vs_infiniswap"] for row in fit_rows
            ) / len(fit_rows),
            "max_speedup_vs_infiniswap": max(
                row["speedup_vs_infiniswap"] for row in fit_rows
            ),
        }
    return {"rows": rows, "summary": summary}


def main():
    result = run()
    print(
        format_table(
            result["rows"],
            title="Figure 7 — ML workload completion time",
        )
    )
    for fit, stats in result["summary"].items():
        print(
            "fit={:.0%}: vs Linux avg {:.1f}x max {:.1f}x; "
            "vs Infiniswap avg {:.2f}x max {:.2f}x".format(
                fit,
                stats["avg_speedup_vs_linux"],
                stats["max_speedup_vs_linux"],
                stats["avg_speedup_vs_infiniswap"],
                stats["max_speedup_vs_infiniswap"],
            )
        )
    return result


if __name__ == "__main__":
    main()
