"""Shared machinery to run paging / KV workloads against a backend.

These runners build a fresh cluster per run (so runs are independent
and reproducible from the seed), wire a virtual-memory instance to the
requested swap backend, drive the workload trace, and report stats.
"""

from dataclasses import dataclass, field

from repro.core.cluster import DisaggregatedCluster
from repro.core.config import ClusterConfig
from repro.hw.latency import MiB
from repro.mem.page import make_pages
from repro.swap.base import VirtualMemory
from repro.swap.factory import make_swap_backend


def default_cluster_config(seed=0, **overrides):
    """The scaled-down testbed every swap experiment runs on.

    Mirrors the paper's setup proportionally: a handful of nodes, one
    measured virtual server, generous receive pools so remote capacity
    is not the bottleneck unless an experiment wants it to be.
    """
    base = dict(
        num_nodes=4,
        servers_per_node=1,
        server_memory_bytes=64 * MiB,
        donation_fraction=0.3,
        receive_pool_slabs=48,
        send_pool_slabs=8,
        replication_factor=1,
        seed=seed,
    )
    base.update(overrides)
    return ClusterConfig(**base)


@dataclass
class PagingRunResult:
    """Outcome of one completion-time run."""

    backend: str
    workload: str
    fit_fraction: float
    completion_time: float
    stats: dict = field(default_factory=dict)
    backend_stats: dict = field(default_factory=dict)
    #: Per-tier rows from the cascade's metrics registry (top tier first).
    tier_stats: list = field(default_factory=list)
    #: Human-readable tier stack, e.g. ``sm -> remote -> disk``.
    tier_stack: str = ""

    def row(self):
        return {
            "backend": self.backend,
            "workload": self.workload,
            "fit": self.fit_fraction,
            "completion_s": self.completion_time,
            "major_faults": self.stats.get("major_faults"),
        }


@dataclass
class KvRunResult:
    """Outcome of one throughput run."""

    backend: str
    workload: str
    fit_fraction: float
    mean_throughput: float
    timeline: list = field(default_factory=list)  # (window_end_s, ops_per_s)
    operations: int = 0
    #: Per-tier rows from the cascade's metrics registry (top tier first).
    tier_stats: list = field(default_factory=list)
    #: Human-readable tier stack, e.g. ``sm -> remote -> disk``.
    tier_stack: str = ""


def _build(backend_name, cluster_config, fastswap_config, slabs_per_target):
    cluster = DisaggregatedCluster.build(cluster_config)
    node = cluster.nodes()[0]
    backend = make_swap_backend(
        backend_name,
        node,
        cluster,
        rng=cluster.rng.stream("backend"),
        fastswap_config=fastswap_config,
        slabs_per_target=slabs_per_target,
    )
    return cluster, node, backend


def _collect_backend_stats(backend):
    interesting = (
        "reads", "writes", "remote_reads", "remote_writes", "sm_puts",
        "sm_gets", "remote_batches", "remote_pages_out", "pbs_pages",
        "disk_writes", "disk_reads", "ssd_writes", "ssd_reads",
        "pool_hits", "pool_misses", "disk_fallback_reads",
        "disk_fallback_writes",
    )
    return {
        name: getattr(backend, name)
        for name in interesting
        if hasattr(backend, name)
    }


def _collect_tier_stats(backend):
    """Per-tier breakdown rows and stack description, if a cascade."""
    if not hasattr(backend, "tier_breakdown"):
        return [], ""
    return backend.tier_breakdown(), backend.describe_stack()


class TierRegistry:
    """Unified per-tier metrics registry fed by every runner invocation.

    Each paging/KV run appends its cascade's per-tier rows here, so an
    experiment module — which typically keeps only completion times —
    can still report the tier breakdown of everything it ran
    (``python -m repro.experiments run <name> --tiers``).
    """

    def __init__(self):
        self._rows = []

    def record(self, backend_name, workload, fit_fraction, tier_stack,
               tier_stats):
        for tier_row in tier_stats:
            row = {
                "backend": backend_name,
                "workload": workload,
                "fit": fit_fraction,
                "stack": tier_stack,
            }
            row.update(tier_row)
            self._rows.append(row)

    def rows(self):
        return list(self._rows)

    def clear(self):
        self._rows.clear()


#: Process-wide registry: cleared/rendered by the experiments CLI.
TIER_REGISTRY = TierRegistry()


def run_paging_workload(backend_name, spec, fit_fraction, seed=0,
                        cluster_config=None, fastswap_config=None,
                        slabs_per_target=24, prefetch_capacity=128,
                        record_fault_latency=False):
    """Run an ML trace to completion under paging; returns the result.

    ``fit_fraction`` is the paper's "N% configuration": what share of
    the working set fits in the virtual server's resident memory.
    """
    if not 0.0 < fit_fraction <= 1.0:
        raise ValueError("fit_fraction must be in (0, 1]")
    cluster_config = cluster_config or default_cluster_config(seed=seed)
    cluster, node, backend = _build(
        backend_name, cluster_config, fastswap_config, slabs_per_target
    )
    rng = cluster.rng
    pages = make_pages(
        spec.pages,
        owner=backend_name,
        compressibility_sampler=spec.compressibility.sampler(rng.stream("pages")),
    )
    capacity = max(1, int(spec.pages * fit_fraction))
    fault_histogram = None
    if record_fault_latency:
        from repro.metrics.stats import Histogram

        fault_histogram = Histogram(least=1e-7, factor=2.0, buckets=32)
    mmu = VirtualMemory(
        cluster.env,
        pages,
        capacity,
        backend,
        cpu=cluster_config.calibration.cpu,
        prefetch_capacity=prefetch_capacity,
        compute_per_access=spec.compute_per_access,
        fault_histogram=fault_histogram,
    )
    if hasattr(backend, "bind_page_table"):
        backend.bind_page_table(mmu.pages, mmu.stats)

    def job():
        yield from backend.setup()
        mmu.stats.start_time = cluster.env.now
        for page_id, is_write in spec.trace(rng.stream("trace")):
            yield from mmu.access(page_id, write=is_write)
        yield from mmu.flush()
        mmu.stats.end_time = cluster.env.now

    cluster.run_process(job(), name="paging:{}".format(backend_name))
    tier_stats, tier_stack = _collect_tier_stats(backend)
    TIER_REGISTRY.record(
        backend_name, spec.name, fit_fraction, tier_stack, tier_stats
    )
    result = PagingRunResult(
        backend=backend_name,
        workload=spec.name,
        fit_fraction=fit_fraction,
        completion_time=mmu.stats.completion_time,
        stats=mmu.stats.snapshot(),
        backend_stats=_collect_backend_stats(backend),
        tier_stats=tier_stats,
        tier_stack=tier_stack,
    )
    if fault_histogram is not None:
        result.stats["fault_p50_s"] = fault_histogram.percentile(0.5)
        result.stats["fault_p99_s"] = fault_histogram.percentile(0.99)
    return result


def run_kv_workload(backend_name, spec, fit_fraction, duration=5.0,
                    window=0.5, seed=0, cluster_config=None,
                    fastswap_config=None, slabs_per_target=24,
                    cold_start=False, prefetch_capacity=None):
    """Closed-loop KV serving for ``duration`` simulated seconds.

    ``cold_start=True`` begins with the whole store swapped out (the
    post-pressure recovery scenario of Figure 9); otherwise the run
    starts with the hottest pages resident.
    """
    if not 0.0 < fit_fraction <= 1.0:
        raise ValueError("fit_fraction must be in (0, 1]")
    cluster_config = cluster_config or default_cluster_config(seed=seed)
    cluster, node, backend = _build(
        backend_name, cluster_config, fastswap_config, slabs_per_target
    )
    rng = cluster.rng
    pages = make_pages(
        spec.pages,
        owner=backend_name,
        compressibility_sampler=spec.compressibility.sampler(rng.stream("pages")),
    )
    capacity = max(1, int(spec.pages * fit_fraction))
    if prefetch_capacity is None:
        # Prefetched pages live in the page cache until pressure; give
        # them a swap-cache share proportional to the resident set.
        prefetch_capacity = max(128, capacity // 4)
    mmu = VirtualMemory(
        cluster.env,
        pages,
        capacity,
        backend,
        cpu=cluster_config.calibration.cpu,
        compute_per_access=spec.compute_per_op,
        prefetch_capacity=prefetch_capacity,
    )
    if hasattr(backend, "bind_page_table"):
        backend.bind_page_table(mmu.pages, mmu.stats)
    timeline = []
    completed = {"ops": 0}

    def client():
        yield from backend.setup()
        if cold_start:
            # Everything starts swapped out: fill and forcibly evict.
            for page in pages:
                yield from backend.swap_out(page)
                mmu.swapped_valid.add(page.page_id)
            yield from backend.drain()
        start = cluster.env.now
        window_end = start + window
        window_ops = 0
        operations = spec.operations(rng.stream("ops"))
        while cluster.env.now - start < duration:
            first_page, count, is_write = next(operations)
            for offset in range(count):
                yield from mmu.access(first_page + offset, write=is_write)
            yield from mmu.flush()
            window_ops += 1
            completed["ops"] += 1
            while cluster.env.now >= window_end:
                timeline.append(
                    (window_end - start, window_ops / window)
                )
                window_ops = 0
                window_end += window

    cluster.run_process(client(), name="kv:{}".format(backend_name))
    mean = completed["ops"] / duration
    tier_stats, tier_stack = _collect_tier_stats(backend)
    TIER_REGISTRY.record(
        backend_name, spec.name, fit_fraction, tier_stack, tier_stats
    )
    return KvRunResult(
        backend=backend_name,
        workload=spec.name,
        fit_fraction=fit_fraction,
        mean_throughput=mean,
        timeline=timeline,
        operations=completed["ops"],
        tier_stats=tier_stats,
        tier_stack=tier_stack,
    )


def run_kv_timeline(backend_name, spec, fit_fraction, duration=30.0,
                    window=1.0, seed=0, **kwargs):
    """Figure 9 helper: cold-start recovery timeline."""
    return run_kv_workload(
        backend_name,
        spec,
        fit_fraction,
        duration=duration,
        window=window,
        seed=seed,
        cold_start=True,
        **kwargs
    )
