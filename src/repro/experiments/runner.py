"""Shared machinery to run paging / KV workloads against a backend.

These runners build a fresh cluster per run (so runs are independent
and reproducible from the seed), wire a virtual-memory instance to the
requested swap backend, drive the workload trace, and report stats.

Every run collects its cross-cutting artifacts (today: the per-tier
cascade breakdown) into a :class:`RunContext` carried on the returned
result.  Runs are therefore parallel-safe by construction: nothing a
run records is shared between two simulator invocations, so the
experiment engine can fan cells out across worker processes and merge
the contexts afterwards.
"""

from dataclasses import dataclass, field, fields

from repro.core.cluster import DisaggregatedCluster
from repro.core.config import ClusterConfig
from repro.hw.latency import MiB
from repro.mem.page import make_pages
from repro.swap.base import VirtualMemory
from repro.swap.factory import make_swap_backend


def default_cluster_config(seed=0, **overrides):
    """The scaled-down testbed every swap experiment runs on.

    Mirrors the paper's setup proportionally: a handful of nodes, one
    measured virtual server, generous receive pools so remote capacity
    is not the bottleneck unless an experiment wants it to be.
    """
    base = dict(
        num_nodes=4,
        servers_per_node=1,
        server_memory_bytes=64 * MiB,
        donation_fraction=0.3,
        receive_pool_slabs=48,
        send_pool_slabs=8,
        replication_factor=1,
        seed=seed,
    )
    base.update(overrides)
    return ClusterConfig(**base)


class RunContext:
    """Per-run collector for cross-cutting run artifacts.

    A fresh context is created for every runner invocation (or passed
    in by the caller to aggregate several runs); the result carries it
    as ``result.context``.  Unlike the old process-wide registry, a
    context is owned by exactly one caller, so concurrent runs in one
    process — or cells fanned out across worker processes — can never
    interleave their rows.
    """

    def __init__(self):
        self.runs = 0
        #: Runs that drove the two-speed (flat-path) engine.
        self.fast_path_runs = 0
        self._tier_rows = []
        self._latency_rows = []

    def record(self, result):
        """Record a finished runner result (tier rows + run count)."""
        self.runs += 1
        if getattr(result, "fast_path", False):
            self.fast_path_runs += 1
        self.record_tier_rows(
            result.backend,
            result.workload,
            result.fit_fraction,
            result.tier_stack,
            result.tier_stats,
        )
        self.record_latency_rows(
            result.backend,
            result.workload,
            result.fit_fraction,
            getattr(result, "latency_stats", None) or [],
        )

    def record_tier_rows(self, backend_name, workload, fit_fraction,
                         tier_stack, tier_stats):
        for tier_row in tier_stats:
            row = {
                "backend": backend_name,
                "workload": workload,
                "fit": fit_fraction,
                "stack": tier_stack,
            }
            row.update(tier_row)
            self._tier_rows.append(row)

    def record_latency_rows(self, backend_name, workload, fit_fraction,
                            latency_stats):
        """Per-(category, op) latency histogram rows from a traced run."""
        for latency_row in latency_stats:
            row = {
                "backend": backend_name,
                "workload": workload,
                "fit": fit_fraction,
            }
            row.update(latency_row)
            self._latency_rows.append(row)

    def tier_rows(self):
        return list(self._tier_rows)

    def latency_rows(self):
        return list(self._latency_rows)

    def merge(self, other):
        """Fold another context's rows into this one (cells -> sweep)."""
        self.runs += other.runs
        self.fast_path_runs += other.fast_path_runs
        self._tier_rows.extend(other.tier_rows())
        self._latency_rows.extend(other.latency_rows())

    def clear(self):
        self.runs = 0
        self.fast_path_runs = 0
        self._tier_rows.clear()
        self._latency_rows.clear()


def _jsonify(value):
    """Mirror the JSON wire shape (tuples -> lists, keys -> str)."""
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


class RunResult:
    """Shared surface of every runner outcome.

    Subclasses are dataclasses; this base gives them a uniform
    ``to_json()`` (plain-JSON payload with a ``kind`` discriminator,
    consumed by the experiment engine's cache and the CLI's ``--json``
    output) and ``from_json()``/``row()`` round-trip helpers.
    """

    kind = ""
    #: Fields excluded from the JSON payload: ``context`` is not
    #: serializable, and ``fast_path`` is an execution-strategy tag —
    #: the whole point of the two-speed engine is that fast and slow
    #: runs serialize byte-identically.
    _json_exclude = ("context", "fast_path")

    def to_json(self):
        payload = {"kind": self.kind}
        for spec in fields(self):
            if spec.name in self._json_exclude:
                continue
            payload[spec.name] = _jsonify(getattr(self, spec.name))
        return payload

    @staticmethod
    def from_json(payload):
        """Rebuild the right result subclass from a ``to_json`` payload."""
        payload = dict(payload)
        kind = payload.pop("kind", None)
        try:
            cls = _RESULT_KINDS[kind]
        except KeyError:
            raise ValueError(
                "unknown result kind {!r}; expected one of {}".format(
                    kind, sorted(_RESULT_KINDS)
                )
            ) from None
        return cls(**payload)

    def row(self):
        """One flat report-table row; subclasses pick the columns."""
        raise NotImplementedError


@dataclass
class PagingRunResult(RunResult):
    """Outcome of one completion-time run."""

    backend: str
    workload: str
    fit_fraction: float
    completion_time: float
    stats: dict = field(default_factory=dict)
    backend_stats: dict = field(default_factory=dict)
    #: Per-tier rows from the cascade's metrics registry (top tier first).
    tier_stats: list = field(default_factory=list)
    #: Human-readable tier stack, e.g. ``sm -> remote -> disk``.
    tier_stack: str = ""
    #: Per-(category, op) latency histogram rows (traced runs only).
    latency_stats: list = field(default_factory=list)
    #: The RunContext this run recorded into (not serialized).
    context: RunContext = field(default=None, repr=False, compare=False)
    #: Whether the run drove the flat-path kernel (not serialized).
    fast_path: bool = field(default=False, compare=False)

    kind = "paging"

    def row(self):
        return {
            "backend": self.backend,
            "workload": self.workload,
            "fit": self.fit_fraction,
            "completion_s": self.completion_time,
            "major_faults": self.stats.get("major_faults"),
        }


@dataclass
class KvRunResult(RunResult):
    """Outcome of one throughput run."""

    backend: str
    workload: str
    fit_fraction: float
    mean_throughput: float
    timeline: list = field(default_factory=list)  # (window_end_s, ops_per_s)
    operations: int = 0
    #: Per-tier rows from the cascade's metrics registry (top tier first).
    tier_stats: list = field(default_factory=list)
    #: Human-readable tier stack, e.g. ``sm -> remote -> disk``.
    tier_stack: str = ""
    #: Per-(category, op) latency histogram rows (traced runs only).
    latency_stats: list = field(default_factory=list)
    #: Per-operation latency percentiles (``record_op_latency`` runs
    #: only): p50/p99/p999 seconds over every completed KV op.
    op_latency: dict = field(default_factory=dict)
    #: The RunContext this run recorded into (not serialized).
    context: RunContext = field(default=None, repr=False, compare=False)
    #: Whether the run drove the flat-path kernel (not serialized).
    fast_path: bool = field(default=False, compare=False)

    kind = "kv"

    def row(self):
        return {
            "backend": self.backend,
            "workload": self.workload,
            "fit": self.fit_fraction,
            "mean_ops_s": self.mean_throughput,
            "operations": self.operations,
        }


_RESULT_KINDS = {
    PagingRunResult.kind: PagingRunResult,
    KvRunResult.kind: KvRunResult,
}


def register_result_kind(cls):
    """Register a :class:`RunResult` subclass for ``from_json`` dispatch.

    Packages that define their own result kinds (e.g. :mod:`repro.serve`)
    call this at import time instead of being imported here, which keeps
    the runner free of upward dependencies.  Usable as a decorator.
    """
    if not cls.kind:
        raise ValueError("result class must set a non-empty kind")
    existing = _RESULT_KINDS.get(cls.kind)
    if existing is not None and existing is not cls:
        raise ValueError("result kind {!r} already registered".format(cls.kind))
    _RESULT_KINDS[cls.kind] = cls
    return cls


def _build(backend_name, cluster_config, fastswap_config, slabs_per_target):
    cluster = DisaggregatedCluster.build(cluster_config)
    node = cluster.nodes()[0]
    backend = make_swap_backend(
        backend_name,
        node,
        cluster,
        rng=cluster.rng.stream("backend"),
        fastswap_config=fastswap_config,
        slabs_per_target=slabs_per_target,
    )
    return cluster, node, backend


def _collect_backend_stats(backend):
    interesting = (
        "reads", "writes", "remote_reads", "remote_writes", "sm_puts",
        "sm_gets", "remote_batches", "remote_pages_out", "pbs_pages",
        "disk_writes", "disk_reads", "ssd_writes", "ssd_reads",
        "pool_hits", "pool_misses", "disk_fallback_reads",
        "disk_fallback_writes",
    )
    return {
        name: getattr(backend, name)
        for name in interesting
        if hasattr(backend, name)
    }


def _collect_tier_stats(backend):
    """Per-tier breakdown rows and stack description, if a cascade."""
    if not hasattr(backend, "tier_breakdown"):
        return [], ""
    return backend.tier_breakdown(), backend.describe_stack()


def _resolve_context(context):
    """The context this run records into (a fresh one when not given)."""
    return context if context is not None else RunContext()


def _collect_latency_stats(cluster):
    """The run environment's latency histogram rows (traced runs only)."""
    tracer = cluster.env.tracer
    return tracer.histogram_rows() if tracer.enabled else []


def _install_faults(cluster, fault_schedule):
    """Install a fault schedule into the built cluster, if one is given."""
    if fault_schedule is None:
        return None
    from repro.faults.driver import FaultDriver

    driver = FaultDriver(cluster, fault_schedule)
    driver.install()
    return driver


def _fallback_windows(fault_schedule):
    """Blackout windows the flat-path kernel must route around."""
    if fault_schedule is None:
        return ()
    return fault_schedule.blackout_windows()


def run_paging_workload(backend_name, spec, fit_fraction, *, seed=0,
                        cluster_config=None, fastswap_config=None,
                        slabs_per_target=24, prefetch_capacity=128,
                        record_fault_latency=False, fault_schedule=None,
                        context=None, fast_path=False):
    """Run an ML trace to completion under paging; returns the result.

    ``fit_fraction`` is the paper's "N% configuration": what share of
    the working set fits in the virtual server's resident memory.  All
    tuning arguments are keyword-only; ``fault_schedule`` (a
    :class:`~repro.faults.schedule.FaultSchedule`) injects failures as
    timed events while the workload runs; ``context`` aggregates
    several runs into one :class:`RunContext` (one is created per run
    when omitted).  ``fast_path=True`` pre-materializes the reference
    string and drives it through the two-speed engine
    (:meth:`~repro.swap.base.VirtualMemory.run_batch`) — bit-identical
    results, fewer simulation events.
    """
    if not 0.0 < fit_fraction <= 1.0:
        raise ValueError("fit_fraction must be in (0, 1]")
    context = _resolve_context(context)
    cluster_config = cluster_config or default_cluster_config(seed=seed)
    cluster, node, backend = _build(
        backend_name, cluster_config, fastswap_config, slabs_per_target
    )
    _install_faults(cluster, fault_schedule)
    rng = cluster.rng
    pages = make_pages(
        spec.pages,
        owner=backend_name,
        compressibility_sampler=spec.compressibility.sampler(rng.stream("pages")),
    )
    capacity = max(1, int(spec.pages * fit_fraction))
    fault_histogram = None
    if record_fault_latency:
        from repro.trace.histogram import LatencyHistogram

        fault_histogram = LatencyHistogram(least=1e-7, buckets=32)
    mmu = VirtualMemory(
        cluster.env,
        pages,
        capacity,
        backend,
        cpu=cluster_config.calibration.cpu,
        prefetch_capacity=prefetch_capacity,
        compute_per_access=spec.compute_per_access,
        fault_histogram=fault_histogram,
        fallback_windows=_fallback_windows(fault_schedule),
    )
    if hasattr(backend, "bind_page_table"):
        backend.bind_page_table(mmu.pages, mmu.stats)

    def job():
        yield from backend.setup()
        mmu.stats.start_time = cluster.env.now
        if fast_path:
            from repro.workloads.batch import materialize

            batch = materialize(spec, rng.stream("trace"))
            yield from mmu.run_batch(batch)
        else:
            for page_id, is_write in spec.iter_accesses(rng.stream("trace")):
                yield from mmu.access(page_id, write=is_write)
        yield from mmu.flush()
        mmu.stats.end_time = cluster.env.now

    cluster.run_process(job(), name="paging:{}".format(backend_name))
    tier_stats, tier_stack = _collect_tier_stats(backend)
    result = PagingRunResult(
        backend=backend_name,
        workload=spec.name,
        fit_fraction=fit_fraction,
        completion_time=mmu.stats.completion_time,
        stats=mmu.stats.snapshot(),
        backend_stats=_collect_backend_stats(backend),
        tier_stats=tier_stats,
        tier_stack=tier_stack,
        latency_stats=_collect_latency_stats(cluster),
        context=context,
        fast_path=fast_path,
    )
    if fault_histogram is not None:
        result.stats["fault_p50_s"] = fault_histogram.p50
        result.stats["fault_p99_s"] = fault_histogram.p99
        result.stats["fault_p999_s"] = fault_histogram.p999
    context.record(result)
    return result


def run_kv_workload(backend_name, spec, fit_fraction, *, duration=5.0,
                    window=0.5, seed=0, cluster_config=None,
                    fastswap_config=None, slabs_per_target=24,
                    cold_start=False, prefetch_capacity=None,
                    fault_schedule=None, context=None, fast_path=False,
                    record_op_latency=False):
    """Closed-loop KV serving for ``duration`` simulated seconds.

    ``cold_start=True`` begins with the whole store swapped out (the
    post-pressure recovery scenario of Figure 9); otherwise the run
    starts with the hottest pages resident.  All tuning arguments are
    keyword-only; see :func:`run_paging_workload` for
    ``fault_schedule``, ``context`` and ``fast_path``.  KV ops stay
    closed-loop under ``fast_path`` (the window bookkeeping needs the
    clock after every op), so only each op's page burst is bulked.
    ``record_op_latency=True`` times every completed op (access burst
    plus flush) into a histogram and fills ``result.op_latency`` with
    p50/p99/p999 — the tail a fault window stretches; op timings are
    byte-identical between the fast and event paths.
    """
    if not 0.0 < fit_fraction <= 1.0:
        raise ValueError("fit_fraction must be in (0, 1]")
    context = _resolve_context(context)
    cluster_config = cluster_config or default_cluster_config(seed=seed)
    cluster, node, backend = _build(
        backend_name, cluster_config, fastswap_config, slabs_per_target
    )
    _install_faults(cluster, fault_schedule)
    rng = cluster.rng
    pages = make_pages(
        spec.pages,
        owner=backend_name,
        compressibility_sampler=spec.compressibility.sampler(rng.stream("pages")),
    )
    capacity = max(1, int(spec.pages * fit_fraction))
    if prefetch_capacity is None:
        # Prefetched pages live in the page cache until pressure; give
        # them a swap-cache share proportional to the resident set.
        prefetch_capacity = max(128, capacity // 4)
    mmu = VirtualMemory(
        cluster.env,
        pages,
        capacity,
        backend,
        cpu=cluster_config.calibration.cpu,
        compute_per_access=spec.compute_per_op,
        prefetch_capacity=prefetch_capacity,
        fallback_windows=_fallback_windows(fault_schedule),
    )
    if hasattr(backend, "bind_page_table"):
        backend.bind_page_table(mmu.pages, mmu.stats)
    timeline = []
    completed = {"ops": 0}
    op_histogram = None
    if record_op_latency:
        from repro.trace.histogram import LatencyHistogram

        op_histogram = LatencyHistogram(least=1e-7, buckets=32)

    def client():
        if fast_path:
            from repro.sim import flatpath
        yield from backend.setup()
        if cold_start:
            # Everything starts swapped out: fill and forcibly evict.
            for page in pages:
                yield from backend.swap_out(page)
                mmu.swapped_valid.add(page.page_id)
            yield from backend.drain()
        start = cluster.env.now
        window_end = start + window
        window_ops = 0
        operations = spec.iter_operations(rng.stream("ops"))
        while cluster.env.now - start < duration:
            first_page, count, is_write = next(operations)
            op_began = cluster.env.now
            if fast_path:
                # Bulk the op's page burst; fall back to the event
                # engine for whatever the kernel would not inline.  An
                # op whose first page would immediately major-fault
                # (cold starts are all such ops) skips the kernel.
                if (
                    first_page not in mmu.resident
                    and first_page not in mmu.prefetch
                    and first_page in mmu.swapped_valid
                ):
                    index = 0
                else:
                    index, _reason = flatpath.advance(
                        mmu,
                        range(first_page, first_page + count),
                        (is_write,) * count,
                        0,
                    )
                for offset in range(index, count):
                    yield from mmu.access(first_page + offset, write=is_write)
            else:
                for offset in range(count):
                    yield from mmu.access(first_page + offset, write=is_write)
            yield from mmu.flush()
            if op_histogram is not None:
                op_histogram.record(cluster.env.now - op_began)
            window_ops += 1
            completed["ops"] += 1
            while cluster.env.now >= window_end:
                timeline.append(
                    (window_end - start, window_ops / window)
                )
                window_ops = 0
                window_end += window

    cluster.run_process(client(), name="kv:{}".format(backend_name))
    mean = completed["ops"] / duration
    tier_stats, tier_stack = _collect_tier_stats(backend)
    result = KvRunResult(
        backend=backend_name,
        workload=spec.name,
        fit_fraction=fit_fraction,
        mean_throughput=mean,
        timeline=timeline,
        operations=completed["ops"],
        tier_stats=tier_stats,
        tier_stack=tier_stack,
        latency_stats=_collect_latency_stats(cluster),
        op_latency=(
            {
                "count": op_histogram.total,
                "p50_s": op_histogram.p50,
                "p99_s": op_histogram.p99,
                "p999_s": op_histogram.p999,
            }
            if op_histogram is not None
            else {}
        ),
        context=context,
        fast_path=fast_path,
    )
    context.record(result)
    return result


def run_kv_timeline(backend_name, spec, fit_fraction, *, duration=30.0,
                    window=1.0, seed=0, **kwargs):
    """Figure 9 helper: cold-start recovery timeline."""
    return run_kv_workload(
        backend_name,
        spec,
        fit_fraction,
        duration=duration,
        window=window,
        seed=seed,
        cold_start=True,
        **kwargs
    )
