"""Allocation fragmentation: churn x allocator policy x balancing.

The paper's harvesting story (§II, §IV-D) assumes a donor's free bytes
are *usable*: the balancer reads per-node free space and moves pages
toward it.  Real allocators break that assumption — after enough
alloc/free churn a pool can report plenty of free bytes while none of
them form a contiguous region big enough for the next migrated page.
This experiment quantifies that gap.

Every cell builds a first-fit cluster whose receive pools run one
allocator policy (``uniform``: the idealized counter where free ==
allocatable; ``arena``: the jemalloc-style allocator with real extents,
runs and size classes).  Two hot nodes fill each other with large
64 KiB entries; the four cold nodes' receive pools are then churned
with small mixed-size allocations (fill to refusal, partial drains,
refills) modelling residual tenancy, leaving them *low-utilization but
swiss-cheesed*: raw free bytes are high, yet no 64 KiB run fits.

The balancer then harvests under one of three arms: ``off`` (no
balancer — the fragmentation-growth baseline), ``raw`` (plans against
raw free bytes, the pre-arena behaviour), and ``alloc`` (plans against
``allocatable_bytes`` from the telemetry plane).  Under ``raw`` on
arena pools every planned migration dies with a reserve-refused abort
on the fragmented receiver; under ``alloc`` the planner sees the truth
and stops over-promising.  The headline number is the **harvest-yield
gap**: ``yield(alloc) - yield(raw)`` per churn level, zero on uniform
pools and strictly positive on arena pools.

Two extra cells enable compaction: a daemon consolidates fragmented
receive pools (charged at the DRAM copy bandwidth of the calibration),
recovering contiguous extents so the ``alloc`` arm can move bytes
again instead of merely refusing to plan.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.metrics.reporting import format_table

EXPERIMENT = "allocation_fragmentation"

NUM_NODES = 6
#: Cold nodes whose receive pools get churned (the harvest receivers).
COLD_NODES = ("node2", "node3", "node4", "node5")
#: The large-entry size hot nodes store and the balancer migrates.
ENTRY_BYTES = 64 * 1024
#: Small sizes mixed during churn (all land in distinct arena classes).
SMALL_SIZES = (512, 1024, 2048, 4096)
#: Allocator policies swept (uniform is the idealized baseline).
ALLOC_POLICIES = ("uniform", "arena")
#: Balancing arms: none, raw-free planning, allocatable-aware planning.
BALANCE_ARMS = ("off", "raw", "alloc")
#: churn level -> (refill cycles, drain fraction per cycle).
CHURN = {"low": (1, 0.5), "high": (3, 0.8)}
#: Fraction of one receive pool each hot putter stores.
HOT_FILL = 0.9
#: Compact a pool when its external fragmentation exceeds this.
COMPACT_THRESHOLD = 0.3
#: External-fragmentation bound the compaction cells must stay under
#: (the CI gate; without compaction churned arena pools sit far above).
COMPACT_EXT_FRAG_BOUND = 0.5


def cells(scale=1.0, seed=0, duration=3.0, epoch=0.1):
    """The sweep: churn x allocator x balancing, plus compaction cells."""
    grid = [
        RunSpec.make(
            EXPERIMENT,
            workload=churn,
            backend=alloc,
            seed=seed,
            scale=scale,
            balance=balance,
            compact=False,
            duration=duration,
            epoch=epoch,
        )
        for churn in CHURN
        for alloc in ALLOC_POLICIES
        for balance in BALANCE_ARMS
    ]
    compact = [
        RunSpec.make(
            EXPERIMENT,
            workload=churn,
            backend="arena",
            seed=seed,
            scale=scale,
            balance="alloc",
            compact=True,
            duration=duration,
            epoch=epoch,
        )
        for churn in CHURN
    ]
    return grid + compact


def pool_slabs(scale):
    """Receive-pool slabs per node at this scale (min 2 x 1 MiB)."""
    return max(2, round(10 * scale))


def _build_cluster(spec):
    from repro.core.cluster import DisaggregatedCluster
    from repro.core.config import ClusterConfig
    from repro.hw.latency import MiB

    options = spec.options
    config = ClusterConfig(
        num_nodes=NUM_NODES,
        servers_per_node=1,
        server_memory_bytes=16 * MiB,
        donation_fraction=0.0,  # every put lands on the cluster tier
        receive_pool_slabs=pool_slabs(spec.scale),
        send_pool_slabs=2,
        replication_factor=1,
        placement_policy="first_fit",
        group_size=0,
        alloc_policy=spec.backend,
        seed=spec.seed,
    )
    return DisaggregatedCluster.build(config)


def churn_pool(pool, rng, cycles, drain_fraction):
    """Fragment one receive pool by direct alloc/free churn.

    Models residual tenancy below the harvesting layer: fill the pool
    with mixed small entries until every size class refuses, then run
    ``cycles`` rounds of (drain a seeded fraction, refill to refusal),
    finishing with one last drain.  On the uniform backend this leaves
    plain counters (free == allocatable); on the arena backend it
    leaves live small runs pinning every extent, so raw free bytes are
    high while nothing entry-sized fits.  Returns the live entries.
    """
    live = []

    def fill():
        while True:
            order = sorted(SMALL_SIZES, key=lambda _size: rng.random())
            placed = False
            for size in order:
                entry = pool.reserve_entry(size)
                if entry is not None:
                    live.append(entry)
                    placed = True
            if not placed:
                return

    def drain():
        rng.shuffle(live)
        cut = int(len(live) * drain_fraction)
        for entry in live[:cut]:
            pool.release_entry(entry)
        del live[:cut]

    fill()
    for _cycle in range(cycles):
        drain()
        fill()
    drain()
    return live


def _compaction_daemon(cluster, epoch, totals):
    """Generator: compact fragmented receive pools once per epoch.

    Copy cost is charged at the calibrated shared-memory DRAM copy
    bandwidth — compaction is not free, it trades copy time for
    contiguity.
    """
    env = cluster.env
    copy_bandwidth = cluster.config.calibration.shared_memory.copy_bandwidth
    while True:
        yield env.timeout(epoch)
        for node in cluster.nodes():
            stats = node.receive_pool.frag_stats()
            if stats.external_fragmentation <= COMPACT_THRESHOLD:
                continue
            moved = node.receive_pool.compact()
            if moved:
                totals["moved"] += moved
                yield env.timeout(moved / copy_bandwidth)


def _pool_rows(cluster):
    from repro.balance.telemetry import HARVEST_GRAIN

    rows = {}
    for node in cluster.nodes():
        row = node.receive_pool.frag_stats().as_row()
        row["harvest_allocatable"] = node.receive_pool.allocatable_bytes(
            HARVEST_GRAIN
        )
        rows[node.node_id] = row
    return rows


def _cold_summary(pool_rows):
    """Fold the cold nodes' rows into the quantities the report plots."""
    cold = [pool_rows[node_id] for node_id in COLD_NODES]
    free = sum(row["free_bytes"] for row in cold)
    allocatable = sum(row["harvest_allocatable"] for row in cold)
    return {
        "free_bytes": free,
        "allocatable_bytes": allocatable,
        "unusable_free_bytes": free - allocatable,
        "ext_frag_mean": sum(
            row["external_fragmentation"] for row in cold
        ) / len(cold),
        "ext_frag_max": max(row["external_fragmentation"] for row in cold),
    }


def compute(spec):
    from repro.hw.latency import MiB

    options = spec.options
    horizon = options["duration"]
    load_window = 0.4 * horizon
    churn_start = 0.5 * horizon
    cluster = _build_cluster(spec)
    env = cluster.env
    capacity = pool_slabs(spec.scale) * cluster.config.slab_bytes
    cycles, drain_fraction = CHURN[spec.workload]

    # Phase 1 — the two hot nodes flood each other with large entries
    # (first-fit excludes self, so node0 fills node1 and vice versa).
    def drive(server, count, gap, tag):
        for i in range(count):
            yield env.timeout(gap)
            yield from server.ldmc.put(("frag", tag, i), ENTRY_BYTES)

    for node_id in ("node0", "node1"):
        count = int(HOT_FILL * capacity / ENTRY_BYTES)
        server = cluster.node(node_id).servers[0]
        env.process(
            drive(server, count, load_window / count, node_id),
            name="drive:" + node_id,
        )
    env.run(until=churn_start)

    # Phase 2 — churn the cold receive pools into swiss cheese.
    residual = {}
    for node_id in COLD_NODES:
        rng = cluster.rng.stream("alloc-churn/" + node_id)
        residual[node_id] = churn_pool(
            cluster.node(node_id).receive_pool, rng, cycles, drain_fraction
        )
    pools_after_churn = _pool_rows(cluster)

    # Phase 3 — harvest (or don't) for the rest of the horizon.
    compact_totals = {"moved": 0}
    if options["compact"]:
        env.process(
            _compaction_daemon(cluster, options["epoch"], compact_totals),
            name="compactor",
        )
    balancer = None
    if options["balance"] != "off":
        balancer = cluster.attach_balancer(
            policy="greedy",
            epoch=options["epoch"],
            start=True,
            respect_allocatable=(options["balance"] == "alloc"),
        )
    env.run(until=horizon)

    pools_final = _pool_rows(cluster)
    utils = [
        (
            node.receive_pool.used_bytes / node.receive_pool.capacity_bytes
            if node.receive_pool.capacity_bytes
            else 0.0
        )
        for node in cluster.nodes()
    ]
    metrics = balancer.metrics.snapshot() if balancer is not None else None
    return {
        "metrics": metrics,
        "cold_after_churn": _cold_summary(pools_after_churn),
        "cold_final": _cold_summary(pools_final),
        "pools_final": pools_final,
        "residual_entries": {
            node_id: len(entries) for node_id, entries in residual.items()
        },
        "final_utils": utils,
        "util_spread": max(utils) - min(utils),
        "compact_moved_bytes": compact_totals["moved"],
        "network_mb": cluster.fabric.total_bytes / MiB,
    }


def report(results):
    indexed = {
        (
            spec.workload,
            spec.backend,
            spec.options["balance"],
            spec.options["compact"],
        ): payload
        for spec, payload in results
    }
    rows = []
    for (churn, alloc, balance, compact), payload in indexed.items():
        metrics = payload["metrics"]
        cold = payload["cold_final"]
        rows.append(
            {
                "churn": churn,
                "alloc": alloc,
                "balance": balance,
                "compact": compact,
                "ext_frag": cold["ext_frag_mean"],
                "free_mb": cold["free_bytes"] / (1024.0 * 1024.0),
                "unusable_mb": (
                    cold["unusable_free_bytes"] / (1024.0 * 1024.0)
                ),
                "planned_mb": (
                    metrics["planned_bytes"] / (1024.0 * 1024.0)
                    if metrics
                    else 0.0
                ),
                "moved_mb": (
                    metrics["moved_bytes"] / (1024.0 * 1024.0)
                    if metrics
                    else 0.0
                ),
                "aborted": metrics["migrations_aborted"] if metrics else 0,
                "yield": metrics["harvest_yield"] if metrics else None,
                "compact_mb": (
                    payload["compact_moved_bytes"] / (1024.0 * 1024.0)
                ),
            }
        )
    gaps = []
    for churn in CHURN:
        for alloc in ALLOC_POLICIES:
            raw = indexed.get((churn, alloc, "raw", False))
            aware = indexed.get((churn, alloc, "alloc", False))
            if raw is None or aware is None:
                continue
            yield_raw = raw["metrics"]["harvest_yield"]
            yield_alloc = aware["metrics"]["harvest_yield"]
            gaps.append(
                {
                    "churn": churn,
                    "alloc": alloc,
                    "yield_raw": yield_raw,
                    "yield_alloc": yield_alloc,
                    "yield_gap": yield_alloc - yield_raw,
                    "aborted_raw": raw["metrics"]["migrations_aborted"],
                    "aborted_alloc": aware["metrics"]["migrations_aborted"],
                }
            )
    return {"rows": rows, "gaps": gaps}


def arena_gap_rows(result):
    """The gap rows on arena cells — where the yield gap must be > 0."""
    return [row for row in result["gaps"] if row["alloc"] == "arena"]


def compaction_rows(result):
    """The compaction cells' rows — gated on staying defragmented."""
    return [row for row in result["rows"] if row["compact"]]


def run(scale=1.0, seed=0, duration=3.0, epoch=0.1):
    """Fragmentation and harvest yield per (churn, allocator, arm)."""
    return run_serial(
        sys.modules[__name__],
        scale=scale,
        seed=seed,
        duration=duration,
        epoch=epoch,
    )


def render(result):
    cells_table = format_table(
        result["rows"],
        title=(
            "Allocation fragmentation — external fragmentation and "
            "harvest outcome (churn x allocator x balancing arm)"
        ),
        float_format="{:.4g}",
    )
    gaps_table = format_table(
        result["gaps"],
        title=(
            "Harvest-yield gap — allocatable-aware vs raw-free planning"
        ),
        float_format="{:.4g}",
    )
    return cells_table + "\n\n" + gaps_table


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
