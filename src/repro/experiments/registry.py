"""The experiment registry: CLI name -> (module path, description).

Modules are imported lazily so the CLI starts fast, engine worker
processes only import the experiment they compute, and the registry
itself can be imported from anywhere (including the experiment modules)
without cycles.

Every registered module implements the declarative experiment contract
(see ``repro.experiments.engine``):

* ``cells(scale=1.0, seed=0, **opts) -> list[RunSpec]`` — the sweep's
  independent cells, each fully described by a picklable RunSpec;
* ``compute(spec) -> payload`` — run one cell; the payload must be
  plain JSON data (the engine caches it and ships it across worker
  processes);
* ``report(results) -> {"rows": [...], ...}`` — fold the ordered
  ``(spec, payload)`` pairs into the figure/table of the paper;
* ``run(scale=1.0, seed=0, **opts)`` — serial convenience wrapper
  (``engine.run_serial``) used by tests and benchmarks;
* ``render(result) -> str`` — pretty-print a ``run``/``report`` result;
* ``main()`` — thin: ``print(render(run()))``.
"""

import importlib

_PACKAGE = "repro.experiments"

#: name -> (module path, description); iteration order is the order
#: ``python -m repro.experiments all`` runs.
EXPERIMENTS = {
    "table1": (
        _PACKAGE + ".table1_applications",
        "applications used in the experiments",
    ),
    "fig3": (
        _PACKAGE + ".fig3_compression_ratio",
        "compression ratios vs zswap",
    ),
    "fig4": (
        _PACKAGE + ".fig4_compression_effect",
        "compressibility vs completion time",
    ),
    "fig5": (
        _PACKAGE + ".fig5_compression_app_perf",
        "compression on/off app performance",
    ),
    "fig6": (_PACKAGE + ".fig6_batching_pbs", "window batching + PBS"),
    "fig7": (
        _PACKAGE + ".fig7_ml_completion",
        "ML completion: FastSwap/Infiniswap/Linux",
    ),
    "fig8": (
        _PACKAGE + ".fig8_distribution_ratio",
        "FS-SM..FS-RDMA throughput",
    ),
    "fig9": (
        _PACKAGE + ".fig9_memcached_timeline",
        "Memcached ETC recovery timeline",
    ),
    "fig10": (_PACKAGE + ".fig10_dahi_spark", "vanilla Spark vs DAHI"),
    "ablations": (_PACKAGE + ".ablations", "Section IV design-choice ablations"),
    "discussion": (_PACKAGE + ".discussion_sweeps", "Section III/VI sweeps"),
    "motivation": (
        _PACKAGE + ".motivation_imbalance",
        "Section I imbalance scenario",
    ),
    "multi_tenant": (
        _PACKAGE + ".multi_tenant",
        "concurrent tenants under contention",
    ),
    "resilience_recovery": (
        _PACKAGE + ".resilience_recovery",
        "redundancy scheme x fault rate resilience",
    ),
    "memory_balancing": (
        _PACKAGE + ".memory_balancing",
        "balancing policy x skewed pressure x group size",
    ),
    "open_loop_serving": (
        _PACKAGE + ".open_loop_serving",
        "open-loop QoS serving: goodput under SLO",
    ),
    "allocation_fragmentation": (
        _PACKAGE + ".allocation_fragmentation",
        "allocator churn x fragmentation x harvest yield",
    ),
}


def names():
    """Registered experiment names in run order."""
    return list(EXPERIMENTS)


def description(name):
    return EXPERIMENTS[name][1]


def load(name):
    """Import and return the experiment module registered as ``name``."""
    try:
        module_path, _description = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            "unknown experiment {!r}; known: {}".format(
                name, ", ".join(sorted(EXPERIMENTS))
            )
        ) from None
    return importlib.import_module(module_path)
