"""The experiment harness: one module per table/figure of the paper.

Every module exposes a ``run(scale=1.0, seed=0)`` entry point returning
a plain-dict result (rows/series matching what the paper reports) and a
``main()`` that pretty-prints it.  The benchmarks under ``benchmarks/``
call the same ``run`` functions, so

    python -m repro.experiments.fig7_ml_completion

and the pytest-benchmark target measure the same code.

Index (see DESIGN.md for the full mapping):

====== ======================================================
table1 applications used in the experiments
fig3   compression ratio, FastSwap 2/4 granularities vs zswap
fig4   compressibility ratio vs completion time (remote, disk)
fig5   compression on/off application performance
fig6   batching + proactive batch swap-in (PBS)
fig7   ML completion time: FastSwap / Infiniswap / Linux
fig8   FS-SM...FS-RDMA distribution-ratio throughput
fig9   Memcached ETC 300 s throughput timeline
fig10  vanilla Spark vs DAHI speedups
====== ======================================================
"""

from repro.experiments.runner import (
    KvRunResult,
    PagingRunResult,
    default_cluster_config,
    run_kv_timeline,
    run_kv_workload,
    run_paging_workload,
)

__all__ = [
    "KvRunResult",
    "PagingRunResult",
    "default_cluster_config",
    "run_kv_timeline",
    "run_kv_workload",
    "run_paging_workload",
]
