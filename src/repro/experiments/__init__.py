"""The experiment harness: one module per table/figure of the paper.

Every module implements the declarative experiment contract (see
``repro.experiments.registry``): ``cells()`` declares the sweep's
independent cells as :class:`~repro.experiments.engine.RunSpec`s,
``compute()`` runs one cell, ``report()`` folds the cell payloads into
the paper's rows, and ``run(scale=1.0, seed=0)`` /  ``main()`` are the
serial conveniences built on top.  The engine
(``repro.experiments.engine``) executes the same cells in parallel
with a content-addressed result cache, so

    python -m repro.experiments.fig7_ml_completion
    python -m repro.experiments run fig7 --jobs 8

and the pytest-benchmark target all measure the same code.

Index (see DESIGN.md for the full mapping):

====== ======================================================
table1 applications used in the experiments
fig3   compression ratio, FastSwap 2/4 granularities vs zswap
fig4   compressibility ratio vs completion time (remote, disk)
fig5   compression on/off application performance
fig6   batching + proactive batch swap-in (PBS)
fig7   ML completion time: FastSwap / Infiniswap / Linux
fig8   FS-SM...FS-RDMA distribution-ratio throughput
fig9   Memcached ETC 300 s throughput timeline
fig10  vanilla Spark vs DAHI speedups
====== ======================================================
"""

from repro.experiments.engine import (
    ResultCache,
    RunSpec,
    run_experiment,
)
from repro.experiments.runner import (
    KvRunResult,
    PagingRunResult,
    RunContext,
    default_cluster_config,
    run_kv_timeline,
    run_kv_workload,
    run_paging_workload,
)

__all__ = [
    "KvRunResult",
    "PagingRunResult",
    "ResultCache",
    "RunContext",
    "RunSpec",
    "default_cluster_config",
    "run_experiment",
    "run_kv_timeline",
    "run_kv_workload",
    "run_paging_workload",
]
