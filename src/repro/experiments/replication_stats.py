"""Multi-seed replication of experiments (statistical hygiene).

A single seeded run is deterministic but might sit anywhere in the
distribution over workload randomness.  These helpers rerun a result
across seeds and report mean/stdev/min/max, so headline ratios can be
quoted with their spread — and a stability test can assert the spread
is small enough for single-seed benchmarks to be meaningful.
"""

from repro.metrics.stats import RunningStats


def replicate(fn, seeds, extract=lambda value: value):
    """Run ``fn(seed=s)`` for every seed; aggregate ``extract(result)``.

    Returns ``(stats, raw_values)`` where ``stats`` is a
    :class:`~repro.metrics.stats.RunningStats`.
    """
    stats = RunningStats()
    values = []
    for seed in seeds:
        value = extract(fn(seed=seed))
        values.append(value)
        stats.record(value)
    return stats, values


def replicate_ratio(fn_numerator, fn_denominator, seeds):
    """Per-seed ratio of two experiment outcomes (paired seeds)."""
    stats = RunningStats()
    ratios = []
    for seed in seeds:
        ratio = fn_numerator(seed=seed) / fn_denominator(seed=seed)
        ratios.append(ratio)
        stats.record(ratio)
    return stats, ratios


def coefficient_of_variation(stats):
    """stdev / mean — the headline stability metric."""
    if stats.mean == 0:
        return 0.0
    return stats.stdev / stats.mean
