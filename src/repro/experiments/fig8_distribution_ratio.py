"""Figure 8: varying the node-level / cluster-level distribution ratio.

Redis, Memcached and VoltDB throughput at the 50% configuration under
Linux, Infiniswap, NBDX and five FastSwap distribution ratios:
FS-SM (100% node shared memory), FS-9:1, FS-7:3, FS-5:5 and FS-RDMA
(100% remote memory).

Expected shape: every FastSwap variant beats Linux by orders of
magnitude and the block-device systems by integer factors; throughput
decreases monotonically from FS-SM to FS-RDMA as more swap traffic
leaves the node.
"""

from repro.experiments.runner import run_kv_workload
from repro.metrics.reporting import format_table
from repro.swap.fastswap import FastSwapConfig
from repro.workloads.kv import KV_WORKLOADS

WORKLOADS = ("redis", "memcached", "voltdb")
FS_VARIANTS = (
    ("fs_sm", 1.0),
    ("fs_9_1", 0.9),
    ("fs_7_3", 0.7),
    ("fs_5_5", 0.5),
    ("fs_rdma", 0.0),
)
BASELINES = ("linux", "infiniswap", "nbdx")


def run(scale=1.0, seed=0, duration=3.0):
    """Mean throughput (ops/s) per workload and system."""
    duration = max(0.5, duration * scale)
    rows = []
    for name in WORKLOADS:
        spec = KV_WORKLOADS[name].with_overrides(
            keys=max(256, int(2048 * scale))
        )
        row = {"workload": name}
        for system in BASELINES:
            result = run_kv_workload(
                system, spec, 0.5, duration=duration, seed=seed
            )
            row[system] = result.mean_throughput
        for label, fraction in FS_VARIANTS:
            result = run_kv_workload(
                "fastswap",
                spec,
                0.5,
                duration=duration,
                seed=seed,
                fastswap_config=FastSwapConfig(sm_fraction=fraction),
            )
            row[label] = result.mean_throughput
        rows.append(row)
    return {"rows": rows}


def main():
    result = run()
    print(
        format_table(
            result["rows"],
            title="Figure 8 — throughput (ops/s) vs distribution ratio "
                  "(50% config)",
            float_format="{:.0f}",
        )
    )
    for row in result["rows"]:
        print(
            "{}: FS-SM/Linux={:.0f}x FS-SM/Infiniswap={:.1f}x "
            "FS-RDMA/Infiniswap={:.1f}x".format(
                row["workload"],
                row["fs_sm"] / max(row["linux"], 1e-9),
                row["fs_sm"] / max(row["infiniswap"], 1e-9),
                row["fs_rdma"] / max(row["infiniswap"], 1e-9),
            )
        )
    return result


if __name__ == "__main__":
    main()
