"""Figure 8: varying the node-level / cluster-level distribution ratio.

Redis, Memcached and VoltDB throughput at the 50% configuration under
Linux, Infiniswap, NBDX and five FastSwap distribution ratios:
FS-SM (100% node shared memory), FS-9:1, FS-7:3, FS-5:5 and FS-RDMA
(100% remote memory).

Expected shape: every FastSwap variant beats Linux by orders of
magnitude and the block-device systems by integer factors; throughput
decreases monotonically from FS-SM to FS-RDMA as more swap traffic
leaves the node.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.experiments.runner import run_kv_workload
from repro.metrics.reporting import format_table

EXPERIMENT = "fig8"
WORKLOADS = ("redis", "memcached", "voltdb")
FS_VARIANTS = (
    ("fs_sm", 1.0),
    ("fs_9_1", 0.9),
    ("fs_7_3", 0.7),
    ("fs_5_5", 0.5),
    ("fs_rdma", 0.0),
)
BASELINES = ("linux", "infiniswap", "nbdx")
#: Column order of the figure, baselines first.
COLUMNS = BASELINES + tuple(label for label, _fraction in FS_VARIANTS)


def cells(scale=1.0, seed=0, duration=3.0):
    """One cell per (workload, system column)."""
    specs = []
    for name in WORKLOADS:
        for system in BASELINES:
            specs.append(
                RunSpec.make(EXPERIMENT, backend=system, workload=name,
                             fit=0.5, seed=seed, scale=scale, column=system,
                             duration=duration)
            )
        for label, fraction in FS_VARIANTS:
            specs.append(
                RunSpec.make(EXPERIMENT, backend="fastswap", workload=name,
                             fit=0.5, seed=seed, scale=scale, column=label,
                             sm_fraction=fraction, duration=duration)
            )
    return specs


def compute(spec):
    from repro.swap.fastswap import FastSwapConfig
    from repro.workloads.kv import KV_WORKLOADS

    options = spec.options
    duration = max(0.5, options["duration"] * spec.scale)
    workload = KV_WORKLOADS[spec.workload].with_overrides(
        keys=max(256, int(2048 * spec.scale))
    )
    fastswap_config = None
    if "sm_fraction" in options:
        fastswap_config = FastSwapConfig(sm_fraction=options["sm_fraction"])
    result = run_kv_workload(
        spec.backend, workload, spec.fit, duration=duration, seed=spec.seed,
        fastswap_config=fastswap_config,
        fast_path=spec.fast_path,
    )
    return result.to_json()


def report(results):
    throughput = {
        (spec.workload, spec.options["column"]): payload["mean_throughput"]
        for spec, payload in results
    }
    rows = []
    for name in WORKLOADS:
        row = {"workload": name}
        for column in COLUMNS:
            row[column] = throughput[(name, column)]
        rows.append(row)
    return {"rows": rows}


def run(scale=1.0, seed=0, duration=3.0):
    """Mean throughput (ops/s) per workload and system."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed,
                      duration=duration)


def render(result):
    lines = [
        format_table(
            result["rows"],
            title="Figure 8 — throughput (ops/s) vs distribution ratio "
                  "(50% config)",
            float_format="{:.0f}",
        )
    ]
    for row in result["rows"]:
        lines.append(
            "{}: FS-SM/Linux={:.0f}x FS-SM/Infiniswap={:.1f}x "
            "FS-RDMA/Infiniswap={:.1f}x".format(
                row["workload"],
                row["fs_sm"] / max(row["linux"], 1e-9),
                row["fs_sm"] / max(row["infiniswap"], 1e-9),
                row["fs_rdma"] / max(row["infiniswap"], 1e-9),
            )
        )
    return "\n".join(lines)


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
