"""Multi-tenant contention: every node's server pages at once.

Single-tenant experiments understate real clusters: when all servers
hit memory pressure together, swap traffic contends for NICs, receive
pools and disks.  This experiment runs one paging workload per node
*concurrently* under each system and reports per-tenant completion
times, the makespan, a fairness ratio (slowest/fastest tenant), and the
cluster's donated-memory utilization sampled while running.

Expected shape: orderings survive contention (FastSwap < Infiniswap ≪
Linux on every tenant); FastSwap's makespan grows sub-linearly with
tenant count because most traffic stays node-local, while the
remote-only systems see their NIC/receive-pool contention grow.
"""

import sys

from repro.core.cluster import DisaggregatedCluster
from repro.experiments.engine import RunSpec, run_serial
from repro.experiments.runner import default_cluster_config
from repro.mem.page import make_pages
from repro.metrics.reporting import format_table
from repro.metrics.utilization import ClusterUtilizationMonitor
from repro.swap.base import VirtualMemory
from repro.swap.factory import make_swap_backend
from repro.workloads.ml import ML_WORKLOADS

EXPERIMENT = "multi_tenant"
SYSTEMS = ("fastswap", "infiniswap", "linux")


def _participating_nodes(cluster, tenants):
    """Nodes whose donated shared pools a tenant can actually fill.

    Tier-1 puts go to the *local* node's shared memory pool (LDMS
    order: shared pool, then remote, then disk), so only nodes hosting
    a tenant ever see shared-pool usage.  When ``tenants`` is below the
    cluster size (the experiment always builds ``max(4, tenants)``
    nodes), averaging utilization over all nodes dilutes the mean by
    ``num_nodes / tenants`` — pools no workload runs next to can never
    be filled.  Utilization is therefore reported over the
    participating nodes only.
    """
    return cluster.nodes()[:tenants]


def _run_system(system, spec, tenants, seed):
    config = default_cluster_config(seed=seed, num_nodes=max(4, tenants))
    cluster = DisaggregatedCluster.build(config)
    monitor = ClusterUtilizationMonitor(
        cluster, period=0.01, nodes=_participating_nodes(cluster, tenants)
    )
    monitor.start()
    jobs = []
    mmus = []
    for index in range(tenants):
        node = cluster.nodes()[index]
        backend = make_swap_backend(
            system, node, cluster,
            rng=cluster.rng.stream("backend{}".format(index)),
        )
        pages = make_pages(
            spec.pages,
            compressibility_sampler=spec.compressibility.sampler(
                cluster.rng.stream("pages{}".format(index))
            ),
        )
        mmu = VirtualMemory(
            cluster.env, pages, max(1, spec.pages // 2), backend,
            cpu=config.calibration.cpu,
            compute_per_access=spec.compute_per_access,
        )
        if hasattr(backend, "bind_page_table"):
            backend.bind_page_table(mmu.pages, mmu.stats)
        mmus.append(mmu)

        def tenant_job(backend=backend, mmu=mmu, index=index):
            yield from backend.setup()
            mmu.stats.start_time = cluster.env.now
            trace_rng = cluster.rng.stream("trace{}".format(index))
            for page_id, is_write in spec.iter_accesses(trace_rng):
                yield from mmu.access(page_id, write=is_write)
            yield from mmu.flush()
            mmu.stats.end_time = cluster.env.now

        jobs.append(cluster.env.process(tenant_job(),
                                        name="tenant{}".format(index)))
    cluster.env.run(until=cluster.env.all_of(jobs))
    completions = [mmu.stats.completion_time for mmu in mmus]
    return {
        "system": system,
        "tenants": tenants,
        "makespan_s": max(completions),
        "mean_completion_s": sum(completions) / len(completions),
        "fairness": max(completions) / min(completions),
        "mean_pool_utilization": monitor.mean_pool_utilization(),
    }


def cells(scale=1.0, seed=0, tenants=4):
    """One cell per system, each running ``tenants`` concurrent jobs."""
    return [
        RunSpec.make(EXPERIMENT, backend=system,
                     workload="logistic_regression", seed=seed, scale=scale,
                     tenants=tenants)
        for system in SYSTEMS
    ]


def compute(spec):
    workload = ML_WORKLOADS[spec.workload].with_overrides(
        pages=max(256, int(2048 * spec.scale)), iterations=3
    )
    return {
        "row": _run_system(
            spec.backend, workload, spec.options["tenants"], spec.seed
        )
    }


def report(results):
    return {"rows": [payload["row"] for _spec, payload in results]}


def run(scale=1.0, seed=0, tenants=4):
    """All three systems under ``tenants`` concurrent paging workloads."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed,
                      tenants=tenants)


def run_scaling(scale=1.0, seed=0, tenant_counts=(1, 2, 4)):
    """FastSwap makespan vs tenant count (contention scaling)."""
    spec = ML_WORKLOADS["logistic_regression"].with_overrides(
        pages=max(256, int(2048 * scale)), iterations=3
    )
    rows = []
    for tenants in tenant_counts:
        for system in ("fastswap", "infiniswap"):
            rows.append(_run_system(system, spec, tenants, seed))
    return {"rows": rows}


def render(result):
    return format_table(
        result["rows"],
        title="Multi-tenant contention — 4 concurrent paging tenants",
    )


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
