"""Resilience under failures: fault rate x replication factor.

The paper's resilience problem (Section IV-D): disaggregation makes
every node's DRAM a shared dependency, so "the failure of one machine
can cause the failure of many others".  This experiment quantifies the
replication answer on the ``replicated-remote`` cascade: a closed-loop
KV store runs cold-start over replicated remote memory while a seeded
fault schedule — node crashes, one permanent memory-server loss, link
flaps, latency degradation, partial partitions — plays out underneath.

The sweep crosses fault intensity with the replication factor.  The
schedule for a given (seed, rate) is *identical across replication
cells* (it is drawn from its own RNG stream before any cluster exists),
so the cells differ only in how much redundancy absorbs the same
faults.  With the schedule capped at 2 concurrently down memory servers,
``replication=3`` must report zero lost pages, while ``replication=1``
loses every page hosted by the permanently lost server.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.metrics.reporting import format_table

EXPERIMENT = "resilience_recovery"

#: Peer memory servers of the measured node (node0) in the default
#: 4-node testbed; fault schedules only ever touch these.
PEER_NODES = ("node1", "node2", "node3")

#: At most this many memory servers may be down at once (permanent
#: losses count for the rest of the horizon).  Kept strictly below the
#: largest replication factor so triple replication provably never
#: loses a page.
MAX_CONCURRENT_DOWN = 2

#: Expected random fault events over the horizon (0 = healthy baseline;
#: non-zero schedules also include one guaranteed server loss).
RATES = (0.0, 2.0, 6.0)

REPLICATIONS = (1, 2, 3)


def cells(scale=1.0, seed=0, duration=4.0, window=0.2):
    """One cell per (fault rate, replication factor)."""
    return [
        RunSpec.make(
            EXPERIMENT,
            backend="replicated-remote",
            workload="memcached",
            fit=0.5,
            seed=seed,
            scale=scale,
            rate=rate,
            replication=replication,
            duration=duration,
            window=window,
        )
        for rate in RATES
        for replication in REPLICATIONS
    ]


def build_schedule(seed, rate, horizon):
    """The fault schedule for one (seed, rate) — replication-independent.

    Drawn from a dedicated RNG stream named by the rate alone, so every
    replication cell of the sweep faces byte-identical faults.
    """
    from repro.faults.schedule import random_schedule
    from repro.sim.rng import RngStreams

    if rate <= 0:
        return None
    rng = RngStreams(seed).stream("faults/rate={:g}".format(rate))
    return random_schedule(
        rng,
        PEER_NODES,
        horizon,
        rate,
        max_concurrent_down=MAX_CONCURRENT_DOWN,
        guaranteed_loss=True,
    )


def compute(spec):
    from repro.experiments.runner import default_cluster_config, run_kv_workload
    from repro.workloads.kv import KV_WORKLOADS

    options = spec.options
    duration = max(0.5, options["duration"] * spec.scale)
    workload = KV_WORKLOADS[spec.workload].with_overrides(
        keys=max(512, int(4096 * spec.scale))
    )
    schedule = build_schedule(spec.seed, options["rate"], duration)
    config = default_cluster_config(
        seed=spec.seed, replication_factor=options["replication"]
    )
    result = run_kv_workload(
        spec.backend,
        workload,
        spec.fit,
        duration=duration,
        window=options["window"],
        seed=spec.seed,
        cluster_config=config,
        cold_start=True,
        fault_schedule=schedule,
        fast_path=spec.fast_path,
    )
    payload = result.to_json()
    payload["schedule"] = schedule.to_json() if schedule is not None else None
    return payload


def _replicated_row(payload):
    for row in payload.get("tier_stats", ()):
        if row.get("tier") == "replicated":
            return row
    return {}


def report(results):
    indexed = {
        (spec.options["rate"], spec.options["replication"]): payload
        for spec, payload in results
    }
    baseline = {
        replication: indexed[(0.0, replication)]["mean_throughput"]
        for _rate, replication in indexed
        if (0.0, replication) in indexed
    }
    rows = []
    for (rate, replication), payload in sorted(indexed.items()):
        tier = _replicated_row(payload)
        healthy = baseline.get(replication)
        rows.append(
            {
                "rate": rate,
                "replication": replication,
                "mean_ops_s": payload["mean_throughput"],
                "vs_healthy": (
                    payload["mean_throughput"] / healthy if healthy else None
                ),
                "pages_lost": tier.get("pages_lost"),
                "re_replicated": tier.get("pages_re_replicated"),
                "degraded_reads": tier.get("degraded_reads"),
                "repairs": tier.get("repairs_completed"),
                "repair_mean_s": tier.get("repair_mean_s"),
                "faults": (
                    len(payload["schedule"]["events"])
                    if payload.get("schedule")
                    else 0
                ),
            }
        )
    return {"rows": rows}


def run(scale=1.0, seed=0, duration=4.0, window=0.2):
    """Recovery metrics per (fault rate, replication factor)."""
    return run_serial(
        sys.modules[__name__],
        scale=scale,
        seed=seed,
        duration=duration,
        window=window,
    )


def render(result):
    return format_table(
        result["rows"],
        title=(
            "Resilience — fault rate x replication "
            "(cold-start KV over replicated remote memory)"
        ),
        float_format="{:.4g}",
    )


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
