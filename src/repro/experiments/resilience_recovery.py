"""Resilience under failures: redundancy scheme x fault rate.

The paper's resilience problem (Section IV-D): disaggregation makes
every node's DRAM a shared dependency, so "the failure of one machine
can cause the failure of many others".  This experiment quantifies the
redundancy answers on the tier cascade: a closed-loop KV store runs
cold-start over resilient remote memory while a seeded fault schedule
— node crashes, one permanent memory-server loss, link flaps, latency
degradation, partial partitions — plays out underneath.

The sweep crosses fault intensity with the redundancy scheme:

* ``replicated`` — write-all / read-one replication at factors 1..3
  (``r``-x memory overhead);
* ``one-rtt`` — the same triple replication, written with the
  SWARM-style single-round protocol (one fabric fan-out per put with
  in-place conflict detection instead of ~``r`` serialized rounds);
* ``erasure`` — Hydra-style 4+2 Reed-Solomon striping (1.5x memory
  overhead), with degraded reads reconstructing from any 4 surviving
  fragments and background reconstruction re-striping lost ones.

The schedule for a given (seed, rate) is *identical across scheme
cells* (it is drawn from its own RNG stream before any cluster
exists), so the cells differ only in how much redundancy — and of what
shape — absorbs the same faults.  With the schedule capped at 2
concurrently down memory servers, ``replication=3``, ``one-rtt`` and
``erasure`` (which tolerates 2 lost fragments) must all report zero
lost pages, while ``replication=1`` loses every page hosted by the
permanently lost server.  The report's ``overhead_x``, ``repair_*``
and ``op_p99_s`` columns expose the memory-overhead / recovery-time /
tail-latency trade-off between the schemes.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.metrics.reporting import format_table

EXPERIMENT = "resilience_recovery"

#: Peer memory servers of the measured node (node0) in the default
#: 4-node testbed; fault schedules only ever touch these.
PEER_NODES = ("node1", "node2", "node3")

#: At most this many memory servers may be down at once (permanent
#: losses count for the rest of the horizon).  Kept strictly below the
#: largest replication factor — and at the erasure code's parity count
#: — so triple replication and 4+2 striping provably never lose a page.
MAX_CONCURRENT_DOWN = 2

#: Expected random fault events over the horizon (0 = healthy baseline;
#: non-zero schedules also include one guaranteed server loss).
RATES = (0.0, 2.0, 6.0)

REPLICATIONS = (1, 2, 3)

#: The erasure cells stripe 4+2 and need six distinct fragment holders,
#: so they run on a wider testbed (7 peers); the fault schedules still
#: only ever touch :data:`PEER_NODES`, keeping them byte-identical
#: across schemes.
EC_NUM_NODES = 8
EC_DATA_SHARDS = 4
EC_PARITY_SHARDS = 2


def cells(scale=1.0, seed=0, duration=4.0, window=0.2):
    """One cell per (scheme, fault rate[, replication factor])."""

    def make(backend, rate, scheme, replication):
        return RunSpec.make(
            EXPERIMENT,
            backend=backend,
            workload="memcached",
            fit=0.5,
            seed=seed,
            scale=scale,
            scheme=scheme,
            rate=rate,
            replication=replication,
            duration=duration,
            window=window,
        )

    specs = [
        make("replicated-remote", rate, "replicated", replication)
        for rate in RATES
        for replication in REPLICATIONS
    ]
    specs.extend(
        make("replicated-remote-1rtt", rate, "one-rtt", max(REPLICATIONS))
        for rate in RATES
    )
    specs.extend(
        make("ec-remote", rate, "erasure", None) for rate in RATES
    )
    return specs


def build_schedule(seed, rate, horizon):
    """The fault schedule for one (seed, rate) — scheme-independent.

    Drawn from a dedicated RNG stream named by the rate alone, so every
    scheme cell of the sweep faces byte-identical faults.
    """
    from repro.faults.schedule import random_schedule
    from repro.sim.rng import RngStreams

    if rate <= 0:
        return None
    rng = RngStreams(seed).stream("faults/rate={:g}".format(rate))
    return random_schedule(
        rng,
        PEER_NODES,
        horizon,
        rate,
        max_concurrent_down=MAX_CONCURRENT_DOWN,
        guaranteed_loss=True,
    )


def compute(spec):
    from repro.experiments.runner import default_cluster_config, run_kv_workload
    from repro.workloads.kv import KV_WORKLOADS

    options = spec.options
    duration = max(0.5, options["duration"] * spec.scale)
    workload = KV_WORKLOADS[spec.workload].with_overrides(
        keys=max(512, int(4096 * spec.scale))
    )
    schedule = build_schedule(spec.seed, options["rate"], duration)
    if options["scheme"] == "erasure":
        config = default_cluster_config(seed=spec.seed, num_nodes=EC_NUM_NODES)
    else:
        config = default_cluster_config(
            seed=spec.seed, replication_factor=options["replication"]
        )
    result = run_kv_workload(
        spec.backend,
        workload,
        spec.fit,
        duration=duration,
        window=options["window"],
        seed=spec.seed,
        cluster_config=config,
        cold_start=True,
        fault_schedule=schedule,
        fast_path=spec.fast_path,
        record_op_latency=True,
    )
    payload = result.to_json()
    payload["schedule"] = schedule.to_json() if schedule is not None else None
    return payload


def _redundant_row(payload):
    for row in payload.get("tier_stats", ()):
        if row.get("tier") in ("replicated", "erasure"):
            return row
    return {}


def report(results):
    indexed = {
        (
            spec.options["scheme"],
            spec.options["rate"],
            spec.options["replication"],
        ): payload
        for spec, payload in results
    }
    baseline = {
        (scheme, replication): indexed[(scheme, 0.0, replication)][
            "mean_throughput"
        ]
        for scheme, _rate, replication in indexed
        if (scheme, 0.0, replication) in indexed
    }
    rows = []
    for (scheme, rate, replication), payload in sorted(
        indexed.items(), key=lambda item: (item[0][0], item[0][1],
                                           item[0][2] or 0)
    ):
        tier = _redundant_row(payload)
        healthy = baseline.get((scheme, replication))
        rows.append(
            {
                "scheme": scheme,
                "rate": rate,
                "replication": replication,
                "mean_ops_s": payload["mean_throughput"],
                "vs_healthy": (
                    payload["mean_throughput"] / healthy if healthy else None
                ),
                "pages_lost": tier.get("pages_lost"),
                "re_replicated": tier.get("pages_re_replicated"),
                "degraded_reads": tier.get("degraded_reads"),
                "repairs": tier.get("repairs_completed"),
                "repair_mean_s": tier.get("repair_mean_s"),
                "overhead_x": tier.get("overhead_x"),
                "write_rounds": tier.get("write_rounds"),
                "puts": tier.get("puts"),
                "op_p99_s": payload.get("op_latency", {}).get("p99_s"),
                "faults": (
                    len(payload["schedule"]["events"])
                    if payload.get("schedule")
                    else 0
                ),
            }
        )
    return {"rows": rows}


def run(scale=1.0, seed=0, duration=4.0, window=0.2):
    """Recovery metrics per (redundancy scheme, fault rate)."""
    return run_serial(
        sys.modules[__name__],
        scale=scale,
        seed=seed,
        duration=duration,
        window=window,
    )


def render(result):
    return format_table(
        result["rows"],
        title=(
            "Resilience — redundancy scheme x fault rate "
            "(cold-start KV over resilient remote memory)"
        ),
        float_format="{:.4g}",
    )


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
