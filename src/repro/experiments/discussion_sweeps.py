"""Sweeps for the paper's discussion sections (III and VI).

Three questions the paper raises but does not measure; the simulator
can:

* ``run_tier_ladder`` (§VI) — one workload swapped against every tier
  of the memory/storage hierarchy: node shared memory, local NVM,
  cluster remote RDMA memory, local SSD, local HDD.  The completion
  times should reproduce the §VI latency ladder.
* ``run_transport`` (§IV-G) — the same remote-memory workload over the
  RDMA fabric vs a TCP/IP-class fabric (30 µs, ~10 GbE): how much of
  remote memory's win is the network?
* ``run_full_disaggregation`` (§III) — "full memory disaggregation at
  cluster level will be feasible when remote memory access speed is
  comparable to local memory speed": sweep the network's one-sided
  latency from DRAM-like to today's RDMA and beyond, and report the
  remote-vs-local slowdown at each point.
"""

import sys
from dataclasses import replace

from repro.experiments.engine import RunSpec, run_serial
from repro.experiments.runner import default_cluster_config, run_paging_workload
from repro.hw.latency import GiB, NetworkSpec
from repro.metrics.reporting import format_table
from repro.swap.fastswap import FastSwapConfig
from repro.workloads.ml import ML_WORKLOADS

EXPERIMENT = "discussion"
PARTS = ("tier_ladder", "transport", "full_disaggregation")
_TITLES = {
    "tier_ladder": "§VI tier ladder (LR, 50% config)",
    "transport": "§IV-G transport: RDMA vs TCP",
    "full_disaggregation": "§III full disaggregation feasibility sweep",
}
TIER_LADDER = ("shared_memory", "nvm", "remote_rdma", "ssd", "hdd")
TRANSPORTS = ("rdma_56g", "tcp_10g")
DISAGG_LATENCIES_US = (0.1, 0.5, 1.5, 5.0, 20.0)


def _spec(scale):
    return ML_WORKLOADS["logistic_regression"].with_overrides(
        pages=max(256, int(2048 * scale)), iterations=3
    )


def _cell(scale, seed, part, **overrides):
    return RunSpec.make(EXPERIMENT, workload="logistic_regression", fit=0.5,
                        seed=seed, scale=scale, part=part, **overrides)


# --- tier ladder (§VI) -------------------------------------------------

def _tier_ladder_cells(scale, seed):
    return [
        _cell(scale, seed, "tier_ladder", tier=tier) for tier in TIER_LADDER
    ]


def _compute_tier_ladder(spec):
    from repro.core.cluster import DisaggregatedCluster
    from repro.mem.page import make_pages
    from repro.swap.base import VirtualMemory
    from repro.swap.factory import make_swap_backend
    from repro.swap.nvm_swap import NvmSwap

    tier = spec.options["tier"]
    backend_name, fs_config = {
        "shared_memory": ("fastswap", FastSwapConfig(sm_fraction=1.0)),
        "nvm": ("nvm", None),
        "remote_rdma": ("fastswap", FastSwapConfig(sm_fraction=0.0)),
        "ssd": ("linux-ssd", None),
        "hdd": ("linux", None),
    }[tier]
    workload = _spec(spec.scale)
    config = default_cluster_config(seed=spec.seed)
    if backend_name == "linux-ssd":
        # Swap device becomes an SSD: swap the HDD spec out.
        config = config.with_overrides(
            calibration=config.calibration.with_overrides(
                hdd=config.calibration.ssd
            )
        )
        backend_name = "linux"
    cluster = DisaggregatedCluster.build(config)
    node = cluster.nodes()[0]
    if backend_name == "nvm":
        backend = NvmSwap(node)
    else:
        backend = make_swap_backend(
            backend_name, node, cluster,
            rng=cluster.rng.stream("backend"),
            fastswap_config=fs_config,
        )
    pages = make_pages(
        workload.pages,
        compressibility_sampler=workload.compressibility.sampler(
            cluster.rng.stream("pages")
        ),
    )
    mmu = VirtualMemory(
        cluster.env, pages, max(1, workload.pages // 2), backend,
        cpu=config.calibration.cpu,
        compute_per_access=workload.compute_per_access,
    )
    if hasattr(backend, "bind_page_table"):
        backend.bind_page_table(mmu.pages, mmu.stats)

    def job():
        yield from backend.setup()
        mmu.stats.start_time = cluster.env.now
        for page_id, is_write in workload.iter_accesses(cluster.rng.stream("trace")):
            yield from mmu.access(page_id, write=is_write)
        yield from mmu.flush()
        mmu.stats.end_time = cluster.env.now

    cluster.run_process(job())
    return {
        "row": {"tier": tier, "completion_s": mmu.stats.completion_time}
    }


def run_tier_ladder(scale=1.0, seed=0):
    """Completion time per swap tier, fastest to slowest."""
    return _run_part(_tier_ladder_cells(scale, seed))


# --- transport (§IV-G) -------------------------------------------------

def _transport_cells(scale, seed):
    return [
        _cell(scale, seed, "transport", fabric=fabric)
        for fabric in TRANSPORTS
    ]


def _compute_transport(spec):
    fabric = spec.options["fabric"]
    base = default_cluster_config(seed=spec.seed)
    if fabric == "rdma_56g":
        network = base.calibration.network
    else:
        network = NetworkSpec(
            rdma_latency=base.calibration.network.tcp_latency,
            send_recv_extra=10e-6,
            bandwidth=base.calibration.network.tcp_bandwidth,
            per_message_overhead=5e-6,  # kernel stack per message
        )
    config = base.with_overrides(
        calibration=base.calibration.with_overrides(network=network)
    )
    result = run_paging_workload(
        "fastswap", _spec(spec.scale), spec.fit, seed=spec.seed,
        cluster_config=config,
        fastswap_config=FastSwapConfig(sm_fraction=0.0),
        fast_path=spec.fast_path,
    )
    return {
        "row": {"transport": fabric,
                "completion_s": result.completion_time},
        "run": result.to_json(),
    }


def run_transport(scale=1.0, seed=0):
    """Remote paging over RDMA vs a TCP-class fabric."""
    return _report_transport(
        [(spec, compute(spec)) for spec in _transport_cells(scale, seed)]
    )


def _report_transport(results):
    rows = [payload["row"] for _spec, payload in results]
    rows[1]["slowdown_vs_rdma"] = (
        rows[1]["completion_s"] / rows[0]["completion_s"]
    )
    return {"rows": rows}


# --- full disaggregation (§III) ----------------------------------------

def _full_disaggregation_cells(scale, seed):
    specs = [_cell(scale, seed, "full_disaggregation", variant="local")]
    specs.extend(
        _cell(scale, seed, "full_disaggregation", variant="remote",
              latency_us=latency_us)
        for latency_us in DISAGG_LATENCIES_US
    )
    return specs


def _compute_full_disaggregation(spec):
    options = spec.options
    base = default_cluster_config(seed=spec.seed)
    if options["variant"] == "local":
        result = run_paging_workload(
            "fastswap", _spec(spec.scale), spec.fit, seed=spec.seed,
            cluster_config=base,
            fastswap_config=FastSwapConfig(sm_fraction=1.0),
            fast_path=spec.fast_path,
        )
        return {"row": {"variant": "local",
                        "completion_s": result.completion_time},
                "run": result.to_json()}
    latency_us = options["latency_us"]
    network = replace(
        base.calibration.network,
        rdma_latency=latency_us * 1e-6,
        bandwidth=max(6.0 * GiB, 10 * GiB if latency_us < 1 else 6 * GiB),
    )
    config = base.with_overrides(
        calibration=base.calibration.with_overrides(network=network)
    )
    result = run_paging_workload(
        "fastswap", _spec(spec.scale), spec.fit, seed=spec.seed,
        cluster_config=config,
        fastswap_config=FastSwapConfig(sm_fraction=0.0),
        fast_path=spec.fast_path,
    )
    return {
        "row": {"one_sided_latency_us": latency_us,
                "remote_completion_s": result.completion_time},
        "run": result.to_json(),
    }


def run_full_disaggregation(scale=1.0, seed=0):
    """Remote-vs-local slowdown as the network approaches DRAM speed."""
    return _report_full_disaggregation(
        [(spec, compute(spec))
         for spec in _full_disaggregation_cells(scale, seed)]
    )


def _report_full_disaggregation(results):
    local = None
    remote_rows = []
    for spec, payload in results:
        if spec.options["variant"] == "local":
            local = payload["row"]["completion_s"]
        else:
            remote_rows.append(payload["row"])
    rows = [
        {
            "one_sided_latency_us": row["one_sided_latency_us"],
            "remote_completion_s": row["remote_completion_s"],
            "slowdown_vs_node_local": row["remote_completion_s"] / local,
        }
        for row in remote_rows
    ]
    return {"rows": rows, "local_completion_s": local}


# --- declarative contract ----------------------------------------------

_PART_CELLS = {
    "tier_ladder": _tier_ladder_cells,
    "transport": _transport_cells,
    "full_disaggregation": _full_disaggregation_cells,
}
_PART_COMPUTE = {
    "tier_ladder": _compute_tier_ladder,
    "transport": _compute_transport,
    "full_disaggregation": _compute_full_disaggregation,
}
_PART_REPORT = {
    "tier_ladder": lambda results: {
        "rows": [payload["row"] for _spec, payload in results]
    },
    "transport": _report_transport,
    "full_disaggregation": _report_full_disaggregation,
}


def cells(scale=1.0, seed=0):
    """Every discussion-sweep cell, grouped by part in report order."""
    specs = []
    for part in PARTS:
        specs.extend(_PART_CELLS[part](scale, seed))
    return specs


def compute(spec):
    return _PART_COMPUTE[spec.options["part"]](spec)


def _run_part(specs):
    return {"rows": [compute(spec)["row"] for spec in specs]}


def report(results):
    sections = {}
    by_part = {}
    for spec, payload in results:
        by_part.setdefault(spec.options["part"], []).append((spec, payload))
    for part in PARTS:
        if part in by_part:
            sections[part] = _PART_REPORT[part](by_part[part])
    rows = [
        dict([("sweep", part)] + list(row.items()))
        for part in PARTS
        for row in sections.get(part, {}).get("rows", [])
    ]
    return {"rows": rows, "sections": sections}


def run(scale=1.0, seed=0):
    """All discussion sweeps; ``sections`` maps part -> its report."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed)


def render(result):
    lines = []
    for part in PARTS:
        section = result["sections"].get(part)
        if not section:
            continue
        if lines:
            lines.append("")
        lines.append(format_table(section["rows"], title=_TITLES[part]))
    return "\n".join(lines)


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
