"""Sweeps for the paper's discussion sections (III and VI).

Three questions the paper raises but does not measure; the simulator
can:

* ``run_tier_ladder`` (§VI) — one workload swapped against every tier
  of the memory/storage hierarchy: node shared memory, local NVM,
  cluster remote RDMA memory, local SSD, local HDD.  The completion
  times should reproduce the §VI latency ladder.
* ``run_transport`` (§IV-G) — the same remote-memory workload over the
  RDMA fabric vs a TCP/IP-class fabric (30 µs, ~10 GbE): how much of
  remote memory's win is the network?
* ``run_full_disaggregation`` (§III) — "full memory disaggregation at
  cluster level will be feasible when remote memory access speed is
  comparable to local memory speed": sweep the network's one-sided
  latency from DRAM-like to today's RDMA and beyond, and report the
  remote-vs-local slowdown at each point.
"""

from dataclasses import replace

from repro.experiments.runner import default_cluster_config, run_paging_workload
from repro.hw.latency import GiB, NetworkSpec
from repro.metrics.reporting import format_table
from repro.swap.fastswap import FastSwapConfig
from repro.workloads.ml import ML_WORKLOADS


def _spec(scale):
    return ML_WORKLOADS["logistic_regression"].with_overrides(
        pages=max(256, int(2048 * scale)), iterations=3
    )


def run_tier_ladder(scale=1.0, seed=0):
    """Completion time per swap tier, fastest to slowest."""
    from repro.core.cluster import DisaggregatedCluster
    from repro.mem.page import make_pages
    from repro.swap.base import VirtualMemory
    from repro.swap.factory import make_swap_backend
    from repro.swap.nvm_swap import NvmSwap

    spec = _spec(scale)
    rows = []
    tiers = (
        ("shared_memory", "fastswap", FastSwapConfig(sm_fraction=1.0)),
        ("nvm", "nvm", None),
        ("remote_rdma", "fastswap", FastSwapConfig(sm_fraction=0.0)),
        ("ssd", "linux-ssd", None),
        ("hdd", "linux", None),
    )
    for label, backend_name, fs_config in tiers:
        config = default_cluster_config(seed=seed)
        if backend_name == "linux-ssd":
            # Swap device becomes an SSD: swap the HDD spec out.
            config = config.with_overrides(
                calibration=config.calibration.with_overrides(
                    hdd=config.calibration.ssd
                )
            )
            backend_name = "linux"
        cluster = DisaggregatedCluster.build(config)
        node = cluster.nodes()[0]
        if backend_name == "nvm":
            backend = NvmSwap(node)
        else:
            backend = make_swap_backend(
                backend_name, node, cluster,
                rng=cluster.rng.stream("backend"),
                fastswap_config=fs_config,
            )
        pages = make_pages(
            spec.pages,
            compressibility_sampler=spec.compressibility.sampler(
                cluster.rng.stream("pages")
            ),
        )
        mmu = VirtualMemory(
            cluster.env, pages, max(1, spec.pages // 2), backend,
            cpu=config.calibration.cpu,
            compute_per_access=spec.compute_per_access,
        )
        if hasattr(backend, "bind_page_table"):
            backend.bind_page_table(mmu.pages, mmu.stats)

        def job():
            yield from backend.setup()
            mmu.stats.start_time = cluster.env.now
            for page_id, is_write in spec.trace(cluster.rng.stream("trace")):
                yield from mmu.access(page_id, write=is_write)
            yield from mmu.flush()
            mmu.stats.end_time = cluster.env.now

        cluster.run_process(job())
        rows.append({"tier": label, "completion_s": mmu.stats.completion_time})
    return {"rows": rows}


def run_transport(scale=1.0, seed=0):
    """Remote paging over RDMA vs a TCP-class fabric."""
    spec = _spec(scale)
    rows = []
    base = default_cluster_config(seed=seed)
    fabrics = (
        ("rdma_56g", base.calibration.network),
        (
            "tcp_10g",
            NetworkSpec(
                rdma_latency=base.calibration.network.tcp_latency,
                send_recv_extra=10e-6,
                bandwidth=base.calibration.network.tcp_bandwidth,
                per_message_overhead=5e-6,  # kernel stack per message
            ),
        ),
    )
    for label, network in fabrics:
        config = base.with_overrides(
            calibration=base.calibration.with_overrides(network=network)
        )
        result = run_paging_workload(
            "fastswap", spec, 0.5, seed=seed,
            cluster_config=config,
            fastswap_config=FastSwapConfig(sm_fraction=0.0),
        )
        rows.append({"transport": label,
                     "completion_s": result.completion_time})
    rows[1]["slowdown_vs_rdma"] = (
        rows[1]["completion_s"] / rows[0]["completion_s"]
    )
    return {"rows": rows}


def run_full_disaggregation(scale=1.0, seed=0):
    """Remote-vs-local slowdown as the network approaches DRAM speed."""
    spec = _spec(scale)
    base = default_cluster_config(seed=seed)
    local = run_paging_workload(
        "fastswap", spec, 0.5, seed=seed, cluster_config=base,
        fastswap_config=FastSwapConfig(sm_fraction=1.0),
    ).completion_time
    rows = []
    for latency_us in (0.1, 0.5, 1.5, 5.0, 20.0):
        network = replace(
            base.calibration.network,
            rdma_latency=latency_us * 1e-6,
            bandwidth=max(6.0 * GiB, 10 * GiB if latency_us < 1 else 6 * GiB),
        )
        config = base.with_overrides(
            calibration=base.calibration.with_overrides(network=network)
        )
        remote = run_paging_workload(
            "fastswap", spec, 0.5, seed=seed, cluster_config=config,
            fastswap_config=FastSwapConfig(sm_fraction=0.0),
        ).completion_time
        rows.append(
            {
                "one_sided_latency_us": latency_us,
                "remote_completion_s": remote,
                "slowdown_vs_node_local": remote / local,
            }
        )
    return {"rows": rows, "local_completion_s": local}


def main():
    print(format_table(run_tier_ladder()["rows"],
                       title="§VI tier ladder (LR, 50% config)"))
    print()
    print(format_table(run_transport()["rows"],
                       title="§IV-G transport: RDMA vs TCP"))
    print()
    print(format_table(run_full_disaggregation()["rows"],
                       title="§III full disaggregation feasibility sweep"))


if __name__ == "__main__":
    main()
