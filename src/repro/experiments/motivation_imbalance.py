"""The paper's motivating scenario (Section I): memory usage imbalance.

A node hosts four virtual servers with equal, peak-estimated memory
allocations.  One server runs a hot analytics job whose working set
exceeds its allocation; the other three sit mostly idle — the cluster
mirrors the reported "average of 30% idle memory during 70% of the
running time".  Three policies are compared for the hot server:

* ``static`` — no disaggregation: overflow pages to the local disk
  (today's default);
* ``node_level`` — partial node-level disaggregation: the idle
  servers' donations form a shared pool the hot server can swap into;
* ``node_plus_cluster`` — full hybrid: node pool first, then remote
  memory on other machines.

Expected shape: both disaggregated policies beat static by orders of
magnitude; node+cluster is at least as good as node-only (and strictly
better once the working set outgrows the node pool), while idle-memory
utilization rises from ~0 to most of the donated pool.
"""

import sys

from repro.core.cluster import DisaggregatedCluster
from repro.core.config import ClusterConfig
from repro.experiments.engine import RunSpec, run_serial
from repro.hw.latency import MiB
from repro.mem.page import make_pages
from repro.metrics.reporting import format_table
from repro.swap.base import VirtualMemory
from repro.swap.factory import make_swap_backend
from repro.swap.fastswap import FastSwap, FastSwapConfig
from repro.workloads.ml import ML_WORKLOADS

EXPERIMENT = "motivation"
POLICIES = ("static", "node_level", "node_plus_cluster")


def _cluster(policy, seed):
    donation = 0.0 if policy == "static" else 0.3
    receive_slabs = 48 if policy == "node_plus_cluster" else 0
    return DisaggregatedCluster.build(
        ClusterConfig(
            num_nodes=4,
            servers_per_node=4,
            server_memory_bytes=24 * MiB,
            donation_fraction=donation,
            receive_pool_slabs=max(receive_slabs, 0),
            send_pool_slabs=4,
            replication_factor=1,
            seed=seed,
        )
    )


def cells(scale=1.0, seed=0, workload="logistic_regression",
          working_set_pages=16384):
    """One cell per disaggregation policy."""
    return [
        RunSpec.make(EXPERIMENT, workload=workload, seed=seed, scale=scale,
                     policy=policy, working_set_pages=working_set_pages)
        for policy in POLICIES
    ]


def compute(spec):
    options = spec.options
    policy = options["policy"]
    # The working-set : pool ratio IS the scenario, so the page count
    # stays fixed; ``scale`` trims iterations only.
    workload = ML_WORKLOADS[spec.workload].with_overrides(
        pages=options["working_set_pages"],
        iterations=max(2, round(3 * spec.scale)),
    )
    cluster = _cluster(policy, spec.seed)
    node = cluster.nodes()[0]
    hot_server = node.servers[0]
    if policy == "static":
        backend = make_swap_backend("linux", node, cluster)
    else:
        config = FastSwapConfig(
            slabs_per_target=48 if policy == "node_plus_cluster" else 0
        )
        backend = FastSwap(node, cluster, config=config)
    # The hot server's resident frames = its private allocation.
    capacity_pages = max(1, hot_server.private_bytes // 4096 // 2)
    pages = make_pages(
        workload.pages,
        compressibility_sampler=workload.compressibility.sampler(
            cluster.rng.stream("pages")
        ),
    )
    mmu = VirtualMemory(
        cluster.env, pages, capacity_pages, backend,
        cpu=cluster.config.calibration.cpu,
        compute_per_access=workload.compute_per_access,
    )
    if hasattr(backend, "bind_page_table"):
        backend.bind_page_table(mmu.pages, mmu.stats)

    def job():
        yield from backend.setup()
        mmu.stats.start_time = cluster.env.now
        for page_id, is_write in workload.iter_accesses(cluster.rng.stream("trace")):
            yield from mmu.access(page_id, write=is_write)
        yield from mmu.flush()
        mmu.stats.end_time = cluster.env.now

    cluster.run_process(job())
    pool = node.shared_pool
    return {
        "row": {
            "policy": policy,
            "completion_s": mmu.stats.completion_time,
            "major_faults": mmu.stats.major_faults,
            "idle_pool_mb": pool.capacity_bytes / MiB,
            "idle_pool_utilization": (
                pool.used_bytes / pool.capacity_bytes
                if pool.capacity_bytes else 0.0
            ),
            "remote_mb_used": (
                sum(a.used_bytes for a in backend.areas.values()) / MiB
                if isinstance(backend, FastSwap) else 0.0
            ),
        }
    }


def report(results):
    return {"rows": [payload["row"] for _spec, payload in results]}


def run(scale=1.0, seed=0, workload="logistic_regression",
        working_set_pages=16384):
    """Hot-server completion time and idle-memory utilization per policy."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed,
                      workload=workload, working_set_pages=working_set_pages)


def render(result):
    return format_table(
        result["rows"],
        title="Motivation — one hot VM among idle neighbours "
              "(completion time + idle-memory use)",
    )


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
