"""Figure 9: Memcached ETC throughput over time (recovery with PBS).

After a memory-pressure event leaves the whole store swapped out, a
closed-loop ETC client hammers the cache and throughput recovers as the
hot set faults back in.  The paper observes: FastSwap with PBS recovers
to optimal almost immediately; without PBS it takes >150 s; Infiniswap
takes more than twice as long again and only reaches ~60% of peak
within the 300 s measurement.

Reproduced shape: both FastSwap variants climb back to their peak
within a few windows while Infiniswap plateaus well below it (never
reaching 90% of the FastSwap peak inside the measurement window — the
paper's "only recovers to 60% of its best performance").  Deviation:
our PBS-vs-no-PBS gap on this *random-access* recovery is neutral
(within noise) because the simulated FastSwap fault path is already
latency-minimal; the PBS benefit reproduces clearly on scan-dominated
workloads (Figure 6).  See EXPERIMENTS.md.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.experiments.runner import run_kv_timeline
from repro.metrics.reporting import format_series, format_table

EXPERIMENT = "fig9"

#: label -> (backend, FastSwapConfig kwargs or None)
SYSTEMS = {
    "fastswap_pbs": ("fastswap", dict(sm_fraction=0.0, pbs=True)),
    "fastswap_nopbs": ("fastswap", dict(sm_fraction=0.0, pbs=False)),
    "infiniswap": ("infiniswap", None),
}


def _recovery_time(timeline, target_rate):
    for when, rate in timeline:
        if rate >= target_rate:
            return when
    return None


def cells(scale=1.0, seed=0, duration=4.0, window=0.2):
    """One cell per recovery system."""
    return [
        RunSpec.make(EXPERIMENT, backend=SYSTEMS[label][0],
                     workload="memcached", fit=0.5, seed=seed, scale=scale,
                     system=label, duration=duration, window=window)
        for label in SYSTEMS
    ]


def compute(spec):
    from repro.swap.fastswap import FastSwapConfig
    from repro.workloads.kv import KV_WORKLOADS

    options = spec.options
    duration = max(0.5, options["duration"] * spec.scale)
    workload = KV_WORKLOADS[spec.workload].with_overrides(
        keys=max(512, int(8192 * spec.scale))
    )
    _backend, config_kwargs = SYSTEMS[options["system"]]
    fastswap_config = (
        FastSwapConfig(**config_kwargs) if config_kwargs else None
    )
    result = run_kv_timeline(
        spec.backend,
        workload,
        spec.fit,
        duration=duration,
        window=options["window"],
        seed=spec.seed,
        fastswap_config=fastswap_config,
        fast_path=spec.fast_path,
    )
    return result.to_json()


def report(results):
    timelines = {
        spec.options["system"]: payload for spec, payload in results
    }
    peak = max(
        rate
        for payload in timelines.values()
        for _t, rate in payload["timeline"]
    )
    rows = []
    for label, payload in timelines.items():
        timeline = payload["timeline"]
        rows.append(
            {
                "system": label,
                "mean_ops_s": payload["mean_throughput"],
                "final_ops_s": timeline[-1][1] if timeline else 0,
                "t_to_90pct_peak_s": _recovery_time(timeline, 0.9 * peak),
            }
        )
    return {
        "rows": rows,
        "timelines": {
            label: payload["timeline"]
            for label, payload in timelines.items()
        },
        "peak_ops_s": peak,
    }


def run(scale=1.0, seed=0, duration=4.0, window=0.2):
    """Throughput timelines and recovery times per system."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed,
                      duration=duration, window=window)


def render(result):
    lines = [
        format_table(
            result["rows"],
            title="Figure 9 — Memcached ETC recovery (50% config, cold start)",
            float_format="{:.4g}",
        )
    ]
    for label, timeline in result["timelines"].items():
        lines.append("")
        lines.append(format_series(timeline[:20], title=label, x_label="t_s",
                                   y_label="ops_s"))
    return "\n".join(lines)


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
