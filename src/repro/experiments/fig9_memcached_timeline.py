"""Figure 9: Memcached ETC throughput over time (recovery with PBS).

After a memory-pressure event leaves the whole store swapped out, a
closed-loop ETC client hammers the cache and throughput recovers as the
hot set faults back in.  The paper observes: FastSwap with PBS recovers
to optimal almost immediately; without PBS it takes >150 s; Infiniswap
takes more than twice as long again and only reaches ~60% of peak
within the 300 s measurement.

Reproduced shape: both FastSwap variants climb back to their peak
within a few windows while Infiniswap plateaus well below it (never
reaching 90% of the FastSwap peak inside the measurement window — the
paper's "only recovers to 60% of its best performance").  Deviation:
our PBS-vs-no-PBS gap on this *random-access* recovery is neutral
(within noise) because the simulated FastSwap fault path is already
latency-minimal; the PBS benefit reproduces clearly on scan-dominated
workloads (Figure 6).  See EXPERIMENTS.md.
"""

from repro.experiments.runner import run_kv_timeline
from repro.metrics.reporting import format_series
from repro.swap.fastswap import FastSwapConfig
from repro.workloads.kv import KV_WORKLOADS

SYSTEMS = (
    ("fastswap_pbs", "fastswap", FastSwapConfig(sm_fraction=0.0, pbs=True)),
    ("fastswap_nopbs", "fastswap", FastSwapConfig(sm_fraction=0.0, pbs=False)),
    ("infiniswap", "infiniswap", None),
)


def _recovery_time(timeline, target_rate):
    for when, rate in timeline:
        if rate >= target_rate:
            return when
    return None


def run(scale=1.0, seed=0, duration=4.0, window=0.2):
    """Throughput timelines and recovery times per system."""
    duration = max(0.5, duration * scale)
    spec = KV_WORKLOADS["memcached"].with_overrides(
        keys=max(512, int(8192 * scale))
    )
    timelines = {}
    for label, backend, config in SYSTEMS:
        result = run_kv_timeline(
            backend,
            spec,
            0.5,
            duration=duration,
            window=window,
            seed=seed,
            fastswap_config=config,
        )
        timelines[label] = result
    peak = max(
        rate for result in timelines.values() for _t, rate in result.timeline
    )
    rows = []
    for label, result in timelines.items():
        rows.append(
            {
                "system": label,
                "mean_ops_s": result.mean_throughput,
                "final_ops_s": result.timeline[-1][1] if result.timeline else 0,
                "t_to_90pct_peak_s": _recovery_time(result.timeline, 0.9 * peak),
            }
        )
    return {
        "rows": rows,
        "timelines": {
            label: result.timeline for label, result in timelines.items()
        },
        "peak_ops_s": peak,
    }


def main():
    result = run()
    from repro.metrics.reporting import format_table

    print(
        format_table(
            result["rows"],
            title="Figure 9 — Memcached ETC recovery (50% config, cold start)",
            float_format="{:.4g}",
        )
    )
    for label, timeline in result["timelines"].items():
        print()
        print(format_series(timeline[:20], title=label, x_label="t_s",
                            y_label="ops_s"))
    return result


if __name__ == "__main__":
    main()
