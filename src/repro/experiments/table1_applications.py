"""Table 1: the ten applications used in the experiments.

Prints each application with the paper's working-set/input sizes, our
simulation scale, and the generator parameters that stand in for the
real binaries.
"""

from repro.hw.latency import GiB, MiB
from repro.metrics.reporting import format_table
from repro.workloads.catalog import SCALE, iter_applications


def run():
    """Rows describing every application (paper size -> scaled size)."""
    rows = []
    for app in iter_applications():
        workload = app.workload()
        rows.append(
            {
                "application": app.name,
                "category": app.category,
                "framework": app.framework,
                "paper_ws_gb": app.working_set_bytes / GiB,
                "paper_input_gb": app.input_bytes / GiB,
                "scaled_ws_mb": app.scaled_working_set_bytes / MiB,
                "pages": app.scaled_pages,
                "kind": app.workload_kind,
                "mean_compress_ratio": workload.compressibility.mean_ratio,
            }
        )
    return {"scale": SCALE, "rows": rows}


def main():
    result = run()
    print(
        format_table(
            result["rows"],
            title="Table 1 — applications (paper sizes scaled {}x)".format(
                result["scale"]
            ),
        )
    )
    return result


if __name__ == "__main__":
    main()
