"""Table 1: the ten applications used in the experiments.

Prints each application with the paper's working-set/input sizes, our
simulation scale, and the generator parameters that stand in for the
real binaries.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.metrics.reporting import format_table
from repro.workloads.catalog import SCALE

EXPERIMENT = "table1"


def cells(scale=1.0, seed=0):
    """One (cheap, metadata-only) cell per catalog application."""
    from repro.workloads.catalog import iter_applications

    return [
        RunSpec.make(EXPERIMENT, workload=app.name, seed=seed, scale=scale)
        for app in iter_applications()
    ]


def compute(spec):
    from repro.hw.latency import GiB, MiB
    from repro.workloads.catalog import iter_applications

    app = next(a for a in iter_applications() if a.name == spec.workload)
    workload = app.workload()
    return {
        "application": app.name,
        "category": app.category,
        "framework": app.framework,
        "paper_ws_gb": app.working_set_bytes / GiB,
        "paper_input_gb": app.input_bytes / GiB,
        "scaled_ws_mb": app.scaled_working_set_bytes / MiB,
        "pages": app.scaled_pages,
        "kind": app.workload_kind,
        "mean_compress_ratio": workload.compressibility.mean_ratio,
    }


def report(results):
    return {
        "scale": SCALE,
        "rows": [payload for _spec, payload in results],
    }


def run(scale=1.0, seed=0):
    """Rows describing every application (paper size -> scaled size)."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed)


def render(result):
    return format_table(
        result["rows"],
        title="Table 1 — applications (paper sizes scaled {}x)".format(
            result["scale"]
        ),
    )


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
