"""Figure 10: vanilla Spark vs DAHI-powered Spark.

Four iterative jobs (LR, SVM, K-Means, Connected Components) on three
dataset categories.  Small datasets cache fully (no difference);
medium and large overflow executor storage, where vanilla Spark
recomputes dropped partitions from lineage and DAHI fetches them from
disaggregated memory.

Paper speedups (medium / large): LR 1.7x / 4.3x, SVM 3.3x / 5.8x,
K-Means 2.5x / 3.1x, CC 1.3x / 1.9x.  Expected shape: speedup 1.0 on
small, growing with dataset size, CC smallest, SVM largest.
"""

from repro.cache.jobs import SPARK_JOBS, run_spark_job
from repro.hw.latency import MiB
from repro.metrics.reporting import format_table

JOBS = ("logistic_regression", "svm", "kmeans", "connected_components")
CATEGORIES = ("small", "medium", "large")


def run(scale=1.0, seed=0):
    """Completion times and speedups per (job, category)."""
    storage = max(4 * MiB, int(24 * MiB * scale))
    rows = []
    for job in JOBS:
        spec = SPARK_JOBS[job]
        for category in CATEGORIES:
            spark = run_spark_job(
                "spark", spec, category, storage_bytes=storage, seed=seed
            )
            dahi = run_spark_job(
                "dahi", spec, category, storage_bytes=storage, seed=seed
            )
            rows.append(
                {
                    "job": job,
                    "dataset": category,
                    "spark_s": spark.completion_time,
                    "dahi_s": dahi.completion_time,
                    "speedup": spark.completion_time / dahi.completion_time,
                }
            )
    return {"rows": rows}


def main():
    result = run()
    print(
        format_table(
            result["rows"],
            title="Figure 10 — vanilla Spark vs DAHI (completion time)",
        )
    )
    return result


if __name__ == "__main__":
    main()
