"""Figure 10: vanilla Spark vs DAHI-powered Spark.

Four iterative jobs (LR, SVM, K-Means, Connected Components) on three
dataset categories.  Small datasets cache fully (no difference);
medium and large overflow executor storage, where vanilla Spark
recomputes dropped partitions from lineage and DAHI fetches them from
disaggregated memory.

Paper speedups (medium / large): LR 1.7x / 4.3x, SVM 3.3x / 5.8x,
K-Means 2.5x / 3.1x, CC 1.3x / 1.9x.  Expected shape: speedup 1.0 on
small, growing with dataset size, CC smallest, SVM largest.
"""

import sys

from repro.experiments.engine import RunSpec, run_serial
from repro.hw.latency import MiB
from repro.metrics.reporting import format_table

EXPERIMENT = "fig10"
JOBS = ("logistic_regression", "svm", "kmeans", "connected_components")
CATEGORIES = ("small", "medium", "large")
SYSTEMS = ("spark", "dahi")


def cells(scale=1.0, seed=0):
    """One cell per (job, dataset category, system)."""
    return [
        RunSpec.make(EXPERIMENT, backend=system, workload=job, seed=seed,
                     scale=scale, category=category)
        for job in JOBS
        for category in CATEGORIES
        for system in SYSTEMS
    ]


def compute(spec):
    from repro.cache.jobs import SPARK_JOBS, run_spark_job

    storage = max(4 * MiB, int(24 * MiB * spec.scale))
    result = run_spark_job(
        spec.backend, SPARK_JOBS[spec.workload], spec.options["category"],
        storage_bytes=storage, seed=spec.seed,
    )
    return {
        "system": result.system,
        "job": result.job,
        "category": result.category,
        "completion_time": result.completion_time,
        "stats": result.stats,
    }


def report(results):
    times = {
        (spec.workload, spec.options["category"], spec.backend):
            payload["completion_time"]
        for spec, payload in results
    }
    rows = []
    for job in JOBS:
        for category in CATEGORIES:
            spark = times[(job, category, "spark")]
            dahi = times[(job, category, "dahi")]
            rows.append(
                {
                    "job": job,
                    "dataset": category,
                    "spark_s": spark,
                    "dahi_s": dahi,
                    "speedup": spark / dahi,
                }
            )
    return {"rows": rows}


def run(scale=1.0, seed=0):
    """Completion times and speedups per (job, category)."""
    return run_serial(sys.modules[__name__], scale=scale, seed=seed)


def render(result):
    return format_table(
        result["rows"],
        title="Figure 10 — vanilla Spark vs DAHI (completion time)",
    )


def main():
    result = run()
    print(render(result))
    return result


if __name__ == "__main__":
    main()
