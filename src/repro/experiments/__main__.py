"""``python -m repro.experiments`` — run experiments from the command line.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig7 [--scale 0.5] [--seed 3]
    python -m repro.experiments all  [--scale 0.25]

``run`` prints the same report as ``python -m repro.experiments.<module>``;
``all`` runs every registered experiment in order.
"""

import argparse
import sys

from repro.experiments import (
    ablations,
    discussion_sweeps,
    motivation_imbalance,
    multi_tenant,
    fig3_compression_ratio,
    fig4_compression_effect,
    fig5_compression_app_perf,
    fig6_batching_pbs,
    fig7_ml_completion,
    fig8_distribution_ratio,
    fig9_memcached_timeline,
    fig10_dahi_spark,
    table1_applications,
)
from repro.experiments.runner import TIER_REGISTRY
from repro.metrics.reporting import format_table

EXPERIMENTS = {
    "table1": (table1_applications, "applications used in the experiments"),
    "fig3": (fig3_compression_ratio, "compression ratios vs zswap"),
    "fig4": (fig4_compression_effect, "compressibility vs completion time"),
    "fig5": (fig5_compression_app_perf, "compression on/off app performance"),
    "fig6": (fig6_batching_pbs, "window batching + PBS"),
    "fig7": (fig7_ml_completion, "ML completion: FastSwap/Infiniswap/Linux"),
    "fig8": (fig8_distribution_ratio, "FS-SM..FS-RDMA throughput"),
    "fig9": (fig9_memcached_timeline, "Memcached ETC recovery timeline"),
    "fig10": (fig10_dahi_spark, "vanilla Spark vs DAHI"),
    "ablations": (ablations, "Section IV design-choice ablations"),
    "discussion": (discussion_sweeps, "Section III/VI sweeps"),
    "motivation": (motivation_imbalance, "Section I imbalance scenario"),
    "multi_tenant": (multi_tenant, "concurrent tenants under contention"),
}


def _list():
    rows = [
        {"experiment": name, "description": description}
        for name, (_module, description) in EXPERIMENTS.items()
    ]
    print(format_table(rows, title="available experiments"))


def _run(name, scale, seed, tiers=False):
    module, _description = EXPERIMENTS[name]
    TIER_REGISTRY.clear()
    if name == "table1":
        module.main()
        return
    if hasattr(module, "run"):
        # Modules with a single run(): reuse their main() at scale 1,
        # or call run() directly for custom scales.
        if scale == 1.0 and seed == 0:
            module.main()
        else:
            result = module.run(scale=scale, seed=seed)
            print(format_table(result["rows"], title=name))
    else:
        module.main()
    if tiers:
        rows = TIER_REGISTRY.rows()
        if rows:
            print()
            print(format_table(
                rows, title="{} — per-tier breakdown".format(name)
            ))


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro.experiments",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments")
    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--scale", type=float, default=1.0)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--tiers", action="store_true",
                            help="print the per-tier cascade breakdown")
    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--scale", type=float, default=1.0)
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument("--tiers", action="store_true",
                            help="print the per-tier cascade breakdown")
    args = parser.parse_args(argv)

    if args.command == "list":
        _list()
    elif args.command == "run":
        _run(args.experiment, args.scale, args.seed, tiers=args.tiers)
    elif args.command == "all":
        for name in EXPERIMENTS:
            print("\n===== {} =====".format(name))
            _run(name, args.scale, args.seed, tiers=args.tiers)
    return 0


if __name__ == "__main__":
    sys.exit(main())
