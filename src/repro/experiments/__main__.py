"""``python -m repro.experiments`` — run experiments from the command line.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig7 [--scale 0.5] [--seed 3]
                                         [--jobs 8] [--no-cache] [--json]
                                         [--tiers] [--fast-path]
                                         [--cells 0,3,8-10]
                                         [--trace[=PATH]]
                                         [--trace-filter net,migrate]
    python -m repro.experiments all  [--scale 0.25] [--jobs 8] [--json]
                                     [--fast-path]
    python -m repro.experiments cache [--clear]

``run`` executes one experiment through the parallel engine: the sweep's
cells fan out across ``--jobs`` worker processes (default: all CPUs) and
land in the content-addressed result cache (``.repro-cache/`` or
``$REPRO_CACHE_DIR``), so re-running a figure recomputes only changed
cells.  ``all`` runs every registered experiment in order; ``--json``
emits one machine-readable document instead of tables.  Reports are
assembled in cell order, so any ``--jobs`` value prints byte-identical
tables.
"""

import argparse
import json
import os
import sys

from repro.experiments import engine, registry
from repro.metrics.reporting import format_table

#: Back-compat alias (old callers imported EXPERIMENTS from here).
EXPERIMENTS = registry.EXPERIMENTS


def _list():
    rows = [
        {"experiment": name, "description": registry.description(name)}
        for name in registry.names()
    ]
    print(format_table(rows, title="available experiments"))


def _run_one(name, args, cache):
    trace = getattr(args, "trace", None) is not None
    return engine.run_experiment(
        name,
        scale=args.scale,
        seed=args.seed,
        jobs=args.jobs,
        cache=None if trace else cache,
        trace=trace,
        trace_filter=_parse_trace_filter(getattr(args, "trace_filter", None)),
        fast_path=getattr(args, "fast_path", False),
        cells=_parse_cells(getattr(args, "cells", None)),
    )


def _parse_cells(raw):
    """``"0,3,8-10"`` -> ``[0, 3, 8, 9, 10]`` (None passes through)."""
    if not raw:
        return None
    indices = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part:
            low, _sep, high = part.partition("-")
            indices.extend(range(int(low), int(high) + 1))
        else:
            indices.append(int(part))
    return indices


def _parse_trace_filter(raw):
    """``"net,migrate"`` -> ``("net", "migrate")`` (None passes through)."""
    if not raw:
        return None
    return tuple(
        prefix.strip() for prefix in raw.split(",") if prefix.strip()
    )


def _export_trace(run, args):
    """Write the run's trace artifact; returns the violation count.

    The output format follows the extension: ``.jsonl`` gets the
    internal wire shape, anything else the Chrome ``trace_event``
    document (Perfetto-loadable).  The analyzer runs on the events
    either way, so a traced run doubles as an invariant check.
    """
    from repro.trace import TraceAnalyzer, digest, write_chrome, write_jsonl

    path = args.trace or "{}-trace.json".format(args.experiment)
    events = run.trace_events
    if path.endswith(".jsonl"):
        write_jsonl(events, path)
    else:
        write_chrome(events, path, meta={
            "experiment": args.experiment,
            "scale": args.scale,
            "seed": args.seed,
        })
    print("trace: {} event(s) -> {} (digest {})".format(
        len(events), path, digest(events)[:16]
    ))
    if getattr(args, "trace_filter", None):
        # Cross-family invariants (crash epochs, retry accounting) need
        # the full taxonomy; a filtered trace cannot be checked soundly.
        print("trace: filtered trace; invariant checks skipped")
        return 0
    violations = TraceAnalyzer(events).check()
    if violations:
        print("trace: {} invariant violation(s):".format(len(violations)))
        for violation in violations[:20]:
            print("  [{}] {}".format(violation.invariant, violation.message))
    else:
        print("trace: all invariants hold")
    return len(violations)


def _print_run(name, run, show_tiers):
    module = registry.load(name)
    print(module.render(run.result))
    if show_tiers and run.tier_rows:
        print()
        print(format_table(
            run.tier_rows, title="{} — per-tier breakdown".format(name)
        ))


def _cache_command(args):
    cache = engine.ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print("evicted {} cached cell(s) from {}".format(removed, cache.root))
        return
    entries = cache.entries()
    print(format_table(
        [{
            "cache_dir": str(cache.root),
            "entries": len(entries),
            "bytes": cache.size_bytes(),
            "code_version": cache.salt,
        }],
        title="result cache",
    ))


def _add_run_arguments(parser):
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                        help="worker processes for sweep cells "
                             "(default: CPU count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="compute every cell; do not read or write "
                             "the result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit a JSON document instead of tables")
    parser.add_argument("--tiers", action="store_true",
                        help="print the per-tier cascade breakdown")
    parser.add_argument("--fast-path", action=argparse.BooleanOptionalAction,
                        default=False, dest="fast_path",
                        help="drive runner-based cells through the "
                             "two-speed flat-path engine (results are "
                             "byte-identical; cached under a separate key)")
    parser.add_argument("--cells", default=None, metavar="INDICES",
                        help="run only these sweep cells, as a comma list "
                             "of indices and inclusive ranges "
                             "(e.g. 0,3,8-10); the report covers just "
                             "the subset")


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro.experiments",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments")
    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(registry.names()))
    _add_run_arguments(run_parser)
    run_parser.add_argument(
        "--trace", nargs="?", const="", default=None, metavar="PATH",
        help="record an execution trace (bypasses the cache); PATH "
             "ending in .jsonl gets the wire shape, anything else a "
             "Chrome trace_event document "
             "(default: <experiment>-trace.json)")
    run_parser.add_argument(
        "--trace-filter", default=None, metavar="PREFIXES",
        help="comma-separated event-name prefixes to keep "
             "(e.g. net,migrate)")
    all_parser = sub.add_parser("all", help="run every experiment")
    _add_run_arguments(all_parser)
    cache_parser = sub.add_parser("cache", help="inspect the result cache")
    cache_parser.add_argument("--clear", action="store_true",
                              help="evict every cached cell")
    cache_parser.add_argument("--cache-dir", default=None)
    args = parser.parse_args(argv)

    if args.command == "list":
        _list()
        return 0
    if args.command == "cache":
        _cache_command(args)
        return 0

    cache = None if args.no_cache else engine.ResultCache(args.cache_dir)
    if args.command == "run":
        run = _run_one(args.experiment, args, cache)
        if args.as_json:
            print(json.dumps(run.to_json()))
        else:
            _print_run(args.experiment, run, args.tiers)
        if args.trace is not None:
            violations = _export_trace(run, args)
            if violations:
                return 1
    elif args.command == "all":
        documents = []
        for name in registry.names():
            run = _run_one(name, args, cache)
            if args.as_json:
                documents.append(run.to_json())
            else:
                print("\n===== {} =====".format(name))
                _print_run(name, run, args.tiers)
        if args.as_json:
            print(json.dumps({
                "scale": args.scale,
                "seed": args.seed,
                "experiments": documents,
            }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
