"""``python -m repro.experiments`` — run experiments from the command line.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig7 [--scale 0.5] [--seed 3]
                                         [--jobs 8] [--no-cache] [--json]
                                         [--tiers]
    python -m repro.experiments all  [--scale 0.25] [--jobs 8] [--json]
    python -m repro.experiments cache [--clear]

``run`` executes one experiment through the parallel engine: the sweep's
cells fan out across ``--jobs`` worker processes (default: all CPUs) and
land in the content-addressed result cache (``.repro-cache/`` or
``$REPRO_CACHE_DIR``), so re-running a figure recomputes only changed
cells.  ``all`` runs every registered experiment in order; ``--json``
emits one machine-readable document instead of tables.  Reports are
assembled in cell order, so any ``--jobs`` value prints byte-identical
tables.
"""

import argparse
import json
import os
import sys

from repro.experiments import engine, registry
from repro.metrics.reporting import format_table

#: Back-compat alias (old callers imported EXPERIMENTS from here).
EXPERIMENTS = registry.EXPERIMENTS


def _list():
    rows = [
        {"experiment": name, "description": registry.description(name)}
        for name in registry.names()
    ]
    print(format_table(rows, title="available experiments"))


def _run_one(name, args, cache):
    return engine.run_experiment(
        name, scale=args.scale, seed=args.seed, jobs=args.jobs, cache=cache
    )


def _print_run(name, run, show_tiers):
    module = registry.load(name)
    print(module.render(run.result))
    if show_tiers and run.tier_rows:
        print()
        print(format_table(
            run.tier_rows, title="{} — per-tier breakdown".format(name)
        ))


def _cache_command(args):
    cache = engine.ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print("evicted {} cached cell(s) from {}".format(removed, cache.root))
        return
    entries = cache.entries()
    print(format_table(
        [{
            "cache_dir": str(cache.root),
            "entries": len(entries),
            "bytes": cache.size_bytes(),
            "code_version": cache.salt,
        }],
        title="result cache",
    ))


def _add_run_arguments(parser):
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1,
                        help="worker processes for sweep cells "
                             "(default: CPU count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="compute every cell; do not read or write "
                             "the result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit a JSON document instead of tables")
    parser.add_argument("--tiers", action="store_true",
                        help="print the per-tier cascade breakdown")


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro.experiments",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiments")
    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(registry.names()))
    _add_run_arguments(run_parser)
    all_parser = sub.add_parser("all", help="run every experiment")
    _add_run_arguments(all_parser)
    cache_parser = sub.add_parser("cache", help="inspect the result cache")
    cache_parser.add_argument("--clear", action="store_true",
                              help="evict every cached cell")
    cache_parser.add_argument("--cache-dir", default=None)
    args = parser.parse_args(argv)

    if args.command == "list":
        _list()
        return 0
    if args.command == "cache":
        _cache_command(args)
        return 0

    cache = None if args.no_cache else engine.ResultCache(args.cache_dir)
    if args.command == "run":
        run = _run_one(args.experiment, args, cache)
        if args.as_json:
            print(json.dumps(run.to_json()))
        else:
            _print_run(args.experiment, run, args.tiers)
    elif args.command == "all":
        documents = []
        for name in registry.names():
            run = _run_one(name, args, cache)
            if args.as_json:
                documents.append(run.to_json())
            else:
                print("\n===== {} =====".format(name))
                _print_run(name, run, args.tiers)
        if args.as_json:
            print(json.dumps({
                "scale": args.scale,
                "seed": args.seed,
                "experiments": documents,
            }))
    return 0


if __name__ == "__main__":
    sys.exit(main())
