"""The vanilla Spark executor block store.

A unified-memory-manager-style storage region of fixed capacity holds
cached partitions in LRU order.  On storage pressure a victim is
dropped according to the RDD's storage level:

* ``MEMORY_ONLY`` (Spark's ``cache()`` default) — the partition is
  discarded; the next access *recomputes it from lineage*, walking back
  to stable storage if no ancestor is cached;
* ``MEMORY_AND_DISK`` — the partition spills to local disk and the next
  access re-reads (deserializes) it.

Either way a miss is expensive — which is the Figure 10 baseline.
"""

from collections import OrderedDict


class StorageLevel:
    MEMORY_ONLY = "memory_only"
    MEMORY_AND_DISK = "memory_and_disk"

    ALL = (MEMORY_ONLY, MEMORY_AND_DISK)


class CacheStats:
    """Counters for one block store."""

    __slots__ = ("gets", "hits", "recomputes", "disk_reads", "evictions",
                 "storage_scans", "offheap_fetches")

    def __init__(self):
        self.gets = 0
        self.hits = 0
        self.recomputes = 0
        self.disk_reads = 0
        self.evictions = 0
        self.storage_scans = 0
        self.offheap_fetches = 0

    def snapshot(self):
        return {name: getattr(self, name) for name in self.__slots__}


class ExecutorStore:
    """Vanilla Spark storage memory for one executor."""

    #: DRAM fetch of a cached partition, per byte (deserialized objects).
    MEMORY_FETCH_PER_BYTE = 1.0 / (8 * 1024 ** 3)
    #: Fixed per-access block-manager overhead.
    ACCESS_OVERHEAD = 5.0e-6

    def __init__(self, env, node, capacity_bytes,
                 storage_level=StorageLevel.MEMORY_ONLY):
        if storage_level not in StorageLevel.ALL:
            raise ValueError("unknown storage level {!r}".format(storage_level))
        self.env = env
        self.node = node
        self.capacity_bytes = capacity_bytes
        self.storage_level = storage_level
        self.cached = OrderedDict()  # partition.key -> partition
        self.used_bytes = 0
        self.spilled = {}  # partition.key -> disk offset
        self.stats = CacheStats()

    # -- public API ----------------------------------------------------------

    def get_partition(self, partition):
        """Generator: materialize a partition, charging what it costs."""
        self.stats.gets += 1
        key = partition.key
        if key in self.cached:
            self.cached.move_to_end(key)
            yield self.env.timeout(self._memory_fetch_time(partition))
            self.stats.hits += 1
            return "hit"
        outcome = yield from self._miss(partition)
        if partition.rdd.cached:
            yield from self.cache_partition(partition)
        return outcome

    def cache_partition(self, partition):
        """Generator: insert a partition, evicting under pressure.

        Spark's block manager never evicts blocks of the same RDD that
        is being cached (it would thrash the very dataset in use), so
        once storage fills with this RDD, the remainder *overflows* —
        vanilla drops (or spills) it, DAHI parks it off-heap.
        """
        key = partition.key
        if key in self.cached:
            self.cached.move_to_end(key)
            return
        while (
            self.used_bytes + partition.size_bytes > self.capacity_bytes
            and self._pick_victim(partition) is not None
        ):
            yield from self._evict_one(self._pick_victim(partition))
        if self.used_bytes + partition.size_bytes > self.capacity_bytes:
            yield from self._handle_overflow(partition)
            return
        self.cached[key] = partition
        self.used_bytes += partition.size_bytes

    # -- miss paths ------------------------------------------------------------

    def _miss(self, partition):
        if partition.key in self.spilled:
            yield from self._read_spilled(partition)
            return "disk"
        yield from self._recompute(partition)
        return "recomputed"

    def _read_spilled(self, partition):
        offset = self.spilled[partition.key]
        yield self.env.timeout(self.ACCESS_OVERHEAD)
        yield from self.node.hdd.read(offset, partition.size_bytes)
        # Deserialization on the way back in.
        yield self.env.timeout(partition.size_bytes * self.MEMORY_FETCH_PER_BYTE * 2)
        self.stats.disk_reads += 1

    def _recompute(self, partition):
        """Recompute a partition from lineage (recursively, so joins
        re-materialize every parent)."""
        self.stats.recomputes += 1
        yield from self._materialize(partition.rdd, partition.index)

    def _materialize(self, rdd, index):
        """Produce one partition's data: from cache, spill, storage, or
        by recursively materializing parents and transforming."""
        key = (rdd.rdd_id, index)
        if key in self.cached:
            yield self.env.timeout(
                self.ACCESS_OVERHEAD
                + rdd.partition_bytes * self.MEMORY_FETCH_PER_BYTE
            )
            return
        if key in self.spilled:
            yield from self.node.hdd.read(self.spilled[key],
                                          rdd.partition_bytes)
            yield self.env.timeout(
                rdd.partition_bytes * self.MEMORY_FETCH_PER_BYTE * 2
            )
            return
        if not rdd.parents:
            if rdd.storage_read:
                # Scan the input split from stable storage and parse it.
                yield from self.node.hdd.read(
                    self.node.alloc_disk_span(0), rdd.partition_bytes
                )
                yield self.env.timeout(rdd.parse_time_per_partition)
                self.stats.storage_scans += 1
            return
        for parent in rdd.parents:
            yield from self._materialize(parent, index)
        yield self.env.timeout(rdd.compute_time_per_partition)

    # -- eviction ------------------------------------------------------------

    def _pick_victim(self, incoming):
        """LRU victim belonging to a *different* RDD, or ``None``."""
        for key, candidate in self.cached.items():
            if candidate.rdd.rdd_id != incoming.rdd.rdd_id:
                return key
        return None

    def _evict_one(self, key):
        victim = self.cached.pop(key)
        self.used_bytes -= victim.size_bytes
        self.stats.evictions += 1
        yield from self._handle_evicted(victim)

    def _handle_evicted(self, victim):
        if self.storage_level == StorageLevel.MEMORY_AND_DISK:
            offset = self.node.alloc_disk_span(victim.size_bytes)
            yield from self.node.hdd.write(offset, victim.size_bytes)
            self.spilled[victim.key] = offset
        # MEMORY_ONLY: dropped on the floor; lineage will pay later.

    def _handle_overflow(self, partition):
        """A partition that cannot be admitted at all (same-RDD pressure)."""
        yield from self._handle_evicted(partition)
        self.stats.evictions += 1

    # -- helpers -----------------------------------------------------------

    def _memory_fetch_time(self, partition):
        return (
            self.ACCESS_OVERHEAD
            + partition.size_bytes * self.MEMORY_FETCH_PER_BYTE
        )
