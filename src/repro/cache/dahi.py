"""DAHI: disaggregated-memory off-heap caching of RDD partitions.

DAHI replaces vanilla Spark's drop-and-recompute with *off-heap
parking*: an evicted partition goes to the node-coordinated shared
memory pool (idle memory donated by co-hosted executors) and overflows
to cluster remote memory over RDMA — the put/get path of the
disaggregated memory core (:mod:`repro.core`), i.e. the same LDMC →
LDMS → RDMC pipeline the paper's Figure 1 describes.  A later access
fetches the partition back at memory/network speed instead of
recomputing it from lineage.

Batched Accelio-style messaging (Section IV-H) is what makes MB-sized
partition transfers efficient; the large transfers here go over the
one-sided data path, and the message/window ablation benchmark explores
the batching trade directly with :class:`repro.net.rpc.RpcEndpoint`.
"""

from repro.cache.spark import ExecutorStore
from repro.core.errors import CoreError, UnknownKey
from repro.net.errors import NetworkError


class DahiStore(ExecutorStore):
    """Executor store that parks evictions in disaggregated memory."""

    def __init__(self, env, node, capacity_bytes, server,
                 deserialize_per_byte=None):
        # Storage level is irrelevant: DAHI itself is the spill target.
        super().__init__(env, node, capacity_bytes)
        self.server = server
        self.ldmc = server.ldmc
        self.offheap_keys = set()
        self.deserialize_per_byte = (
            self.MEMORY_FETCH_PER_BYTE if deserialize_per_byte is None
            else deserialize_per_byte
        )

    # -- miss path: off-heap first, lineage as the last resort -----------------

    def _miss(self, partition):
        key = partition.key
        if key in self.offheap_keys:
            try:
                yield from self.ldmc.get(("dahi", key))
                # Deserialize the fetched bytes back into objects.
                yield self.env.timeout(
                    partition.size_bytes * self.deserialize_per_byte
                )
                self.stats.offheap_fetches += 1
                return "offheap"
            except (UnknownKey, CoreError, NetworkError):
                # Off-heap copy lost (e.g. remote crash without enough
                # replicas): fall back to lineage like vanilla Spark.
                self.offheap_keys.discard(key)
        yield from self._recompute(partition)
        return "recomputed"

    # -- eviction: park off-heap instead of dropping ---------------------------

    def _handle_evicted(self, victim):
        key = victim.key
        if key in self.offheap_keys:
            return  # RDDs are immutable: the parked copy is still good
        try:
            yield from self.ldmc.put(("dahi", key), victim.size_bytes)
        except (CoreError, NetworkError):
            return  # nowhere to park: behaves like a vanilla drop
        self.offheap_keys.add(key)

    def release_offheap(self):
        """Generator: drop every parked partition (job teardown)."""
        for key in list(self.offheap_keys):
            try:
                yield from self.ldmc.remove(("dahi", key))
            except (UnknownKey, CoreError, NetworkError):
                pass
            self.offheap_keys.discard(key)
