"""RDD caching systems: vanilla Spark vs DAHI (paper Section V-B).

Spark keeps hot RDD partitions in executor memory; once the working set
stops fitting, partitions are dropped and must be *recomputed from
lineage* (or re-read and re-parsed from stable storage) — the paper
calls this premature spilling.  DAHI instead parks evicted partitions
in disaggregated memory: the node shared pool first, remote memory over
RDMA second, so a "miss" costs a memory fetch instead of a recompute.

* :mod:`repro.cache.rdd` — RDDs, partitions and lineage;
* :mod:`repro.cache.spark` — the vanilla executor block store;
* :mod:`repro.cache.dahi` — the DAHI off-heap store on top of the
  disaggregated memory core;
* :mod:`repro.cache.jobs` — iterative Spark jobs (LR, SVM, K-Means,
  CC) and the job runner producing completion times.
"""

from repro.cache.dahi import DahiStore
from repro.cache.jobs import SPARK_JOBS, SparkJobSpec, run_spark_job
from repro.cache.rdd import Rdd, RddPartition
from repro.cache.spark import ExecutorStore, StorageLevel

__all__ = [
    "DahiStore",
    "ExecutorStore",
    "Rdd",
    "RddPartition",
    "SPARK_JOBS",
    "SparkJobSpec",
    "StorageLevel",
    "run_spark_job",
]
