"""Resilient Distributed Datasets: partitions and lineage.

An RDD is an immutable, partitioned dataset; it is either *rooted* in
stable storage (reading a partition costs a disk scan + parse) or
*derived* from a parent through a transformation (computing a partition
costs fetching the parent partition plus the transformation's CPU
work).  Lineage is what makes dropped partitions recoverable — and what
makes dropping them expensive, which is DAHI's whole opportunity.
"""

from itertools import count

_rdd_ids = count(1)


class RddPartition:
    """One partition of one RDD."""

    __slots__ = ("rdd", "index", "size_bytes")

    def __init__(self, rdd, index, size_bytes):
        self.rdd = rdd
        self.index = index
        self.size_bytes = size_bytes

    @property
    def key(self):
        """Globally unique identity used by block stores."""
        return (self.rdd.rdd_id, self.index)

    def __repr__(self):
        return "<Partition {}[{}] {}B>".format(self.rdd.name, self.index,
                                               self.size_bytes)


class Rdd:
    """An immutable partitioned dataset with lineage."""

    def __init__(self, name, num_partitions, partition_bytes, parent=None,
                 parents=None, compute_time_per_partition=0.0,
                 storage_read=False, parse_time_per_partition=0.0):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if parents is not None and parent is not None:
            raise ValueError("pass either parent or parents, not both")
        self.rdd_id = next(_rdd_ids)
        self.name = name
        self.parents = tuple(parents) if parents else (
            (parent,) if parent is not None else ()
        )
        self.partition_bytes = partition_bytes
        self.compute_time_per_partition = compute_time_per_partition
        self.storage_read = storage_read
        self.parse_time_per_partition = parse_time_per_partition
        self.cached = False
        self.partitions = [
            RddPartition(self, i, partition_bytes) for i in range(num_partitions)
        ]

    @classmethod
    def from_storage(cls, name, num_partitions, partition_bytes,
                     parse_time_per_partition=2.0e-3):
        """A root RDD materialized by scanning stable storage."""
        return cls(
            name,
            num_partitions,
            partition_bytes,
            storage_read=True,
            parse_time_per_partition=parse_time_per_partition,
        )

    @property
    def parent(self):
        """First parent (``None`` for root RDDs); kept for the common
        single-parent case."""
        return self.parents[0] if self.parents else None

    def transform(self, name, compute_time_per_partition,
                  size_factor=1.0):
        """Derive a child RDD (``map``/``filter`` stand-in)."""
        return Rdd(
            name,
            len(self.partitions),
            int(self.partition_bytes * size_factor),
            parent=self,
            compute_time_per_partition=compute_time_per_partition,
        )

    def join(self, other, name, compute_time_per_partition,
             size_factor=1.0):
        """Derive a two-parent RDD (``join``/``cogroup`` stand-in).

        Both parents must be co-partitioned (same partition count), the
        narrow-dependency case; recomputing a joined partition needs
        the matching partition of *each* parent.
        """
        if len(other.partitions) != len(self.partitions):
            raise ValueError("join requires co-partitioned parents")
        return Rdd(
            name,
            len(self.partitions),
            int((self.partition_bytes + other.partition_bytes) * size_factor / 2),
            parents=(self, other),
            compute_time_per_partition=compute_time_per_partition,
        )

    def cache(self):
        """Mark this RDD for caching (Spark's ``.cache()``)."""
        self.cached = True
        return self

    def lineage_depth(self):
        """Longest transformation chain back to stable storage."""
        if not self.parents:
            return 0
        return 1 + max(parent.lineage_depth() for parent in self.parents)

    def __repr__(self):
        return "<RDD {} x{} {}B/part>".format(
            self.name, len(self.partitions), self.partition_bytes
        )
