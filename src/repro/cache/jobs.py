"""Iterative Spark jobs and the Figure 10 runner.

A job materializes its working RDD once (scan + parse from stable
storage), caches it, then sweeps every partition per iteration doing
per-partition compute — the structure of LR / SVM / K-Means / CC on
Spark.  The *dataset category* (small/medium/large, Figure 10) fixes
which fraction of the cached RDD fits in executor storage memory:
small fits fully; medium and large increasingly overflow.
"""

from dataclasses import dataclass, field

from repro.cache.dahi import DahiStore
from repro.cache.rdd import Rdd
from repro.cache.spark import ExecutorStore, StorageLevel
from repro.core.cluster import DisaggregatedCluster
from repro.core.config import ClusterConfig
from repro.hw.latency import MiB


@dataclass
class SparkJobSpec:
    """Shape of one iterative Spark job."""

    name: str
    iterations: int = 10
    partition_bytes: int = 1 * MiB
    #: Input scan parse time per partition (deserialization + tokenizing).
    parse_time_per_partition: float = 3.0e-3
    #: The parsed->working transformation cost per partition.
    transform_time_per_partition: float = 1.0e-3
    #: Per-iteration compute per partition (gradients, distances, ...).
    iter_compute_per_partition: float = 3.0e-3
    #: Dataset category -> fraction of the working RDD that fits in
    #: executor storage memory (Figure 10's small/medium/large).
    categories: dict = field(
        default_factory=lambda: {"small": 1.0, "medium": 0.75, "large": 0.45}
    )

    def num_partitions(self, category, storage_bytes):
        """Partitions so that ``categories[category]`` of them fit."""
        fit = self.categories[category]
        return max(1, int(storage_bytes / self.partition_bytes / fit))


#: The four Figure 10 jobs.  Compute costs differ: CC is compute-heavy
#: per partition (graph traversal), so caching matters less (smallest
#: speedups); SVM is fetch-bound (largest speedups).
SPARK_JOBS = {
    "logistic_regression": SparkJobSpec(
        name="logistic_regression",
        iterations=10,
        iter_compute_per_partition=3.0e-3,
        parse_time_per_partition=4.0e-3,
    ),
    "svm": SparkJobSpec(
        name="svm",
        iterations=10,
        iter_compute_per_partition=1.2e-3,
        parse_time_per_partition=5.0e-3,
    ),
    "kmeans": SparkJobSpec(
        name="kmeans",
        iterations=10,
        iter_compute_per_partition=2.0e-3,
        parse_time_per_partition=3.0e-3,
    ),
    "connected_components": SparkJobSpec(
        name="connected_components",
        iterations=10,
        iter_compute_per_partition=8.0e-3,
        parse_time_per_partition=3.0e-3,
    ),
}


@dataclass
class SparkRunResult:
    """Outcome of one Spark job run."""

    system: str
    job: str
    category: str
    completion_time: float
    stats: dict


def default_spark_cluster(seed=0, **overrides):
    """Cluster sized for the RDD-caching experiments."""
    base = dict(
        num_nodes=4,
        servers_per_node=2,  # two executors per node share the pool
        server_memory_bytes=64 * MiB,
        donation_fraction=0.3,
        receive_pool_slabs=64,
        send_pool_slabs=8,
        replication_factor=1,
        seed=seed,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def run_spark_job(system, spec, category, storage_bytes=24 * MiB, seed=0,
                  cluster_config=None):
    """Run one job under ``system`` ("spark" or "dahi").

    Returns a :class:`SparkRunResult` whose ``completion_time`` is the
    simulated job latency.
    """
    if system not in ("spark", "dahi"):
        raise ValueError("system must be 'spark' or 'dahi'")
    cluster_config = cluster_config or default_spark_cluster(seed=seed)
    cluster = DisaggregatedCluster.build(cluster_config)
    node = cluster.nodes()[0]
    server = node.servers[0]
    if system == "dahi":
        store = DahiStore(cluster.env, node, storage_bytes, server)
    else:
        store = ExecutorStore(
            cluster.env, node, storage_bytes,
            storage_level=StorageLevel.MEMORY_ONLY,
        )
    num_partitions = spec.num_partitions(category, storage_bytes)
    input_rdd = Rdd.from_storage(
        "{}-input".format(spec.name),
        num_partitions,
        spec.partition_bytes,
        parse_time_per_partition=spec.parse_time_per_partition,
    )
    working = input_rdd.transform(
        "{}-working".format(spec.name),
        spec.transform_time_per_partition,
    ).cache()

    def job():
        start = cluster.env.now
        for _ in range(spec.iterations):
            for partition in working.partitions:
                yield from store.get_partition(partition)
                yield cluster.env.timeout(spec.iter_compute_per_partition)
        return cluster.env.now - start

    completion = cluster.run_process(job(), name="spark:{}".format(spec.name))
    return SparkRunResult(
        system=system,
        job=spec.name,
        category=category,
        completion_time=completion,
        stats=store.stats.snapshot(),
    )
